(* End-to-end integration tests across every library: the full story of the
   paper exercised on realistic instances, cross-validated between the
   analytic (exact-rational) layer, the brute-force oracles and the
   Monte-Carlo simulator. *)

open Netgraph
module Q = Exact.Q
module V = Defender.Verify

let q = Alcotest.testable Q.pp Q.equal

let ok = function
  | Ok x -> x
  | Error e -> Alcotest.fail ("unexpected error: " ^ e)

(* Scenario 1: the full bipartite pipeline on a random enterprise-ish
   two-tier network, verified three ways. *)
let test_full_pipeline_random_bipartite () =
  let rng = Prng.Rng.create 2026 in
  for _ = 1 to 8 do
    let g = Gen.random_bipartite rng ~a:4 ~b:6 ~p:0.3 in
    let feasible = Defender.Pipeline.max_feasible_k g in
    let k = max 1 (feasible / 2) in
    let nu = 5 in
    let m = Defender.Model.make ~graph:g ~nu ~k in
    let outcome = ok (Defender.Pipeline.solve m) in
    let prof = outcome.Defender.Pipeline.profile in
    (* 1. certificate verification *)
    Alcotest.(check bool) "certificate" true
      (V.verdict_is_confirmed (V.mixed_ne V.Certificate prof));
    (* 2. exhaustive verification when feasible *)
    (match Defender.Model.tuple_space_size m with
    | Some c when c <= 100_000 ->
        Alcotest.(check bool) "exhaustive" true
          (V.verdict_is_confirmed (V.mixed_ne (V.Exhaustive 100_000) prof))
    | _ -> ());
    (* 3. characterization *)
    Alcotest.(check bool) "characterization" true
      (Defender.Characterization.holds V.Certificate prof);
    (* 4. Monte-Carlo agreement *)
    let stats = Sim.Engine.play (Prng.Rng.create 55) prof ~rounds:8000 in
    Alcotest.(check bool) "simulation agrees" true
      (Sim.Engine.agrees_with_analytic stats prof);
    (* 5. gain law *)
    let is_size = List.length (Defender.Profile.vp_support_union prof) in
    Alcotest.check q "gain = k*nu/|IS|"
      (Q.make (k * nu) is_size)
      (Defender.Gain.defender_gain prof)
  done

(* Scenario 2: the reduction commutes with profit scaling across a k-sweep
   ("the power of the defender" measured end to end). *)
let test_power_of_the_defender_sweep () =
  let g = Gen.grid 3 4 in
  let nu = 7 in
  let m1 = Defender.Model.make ~graph:g ~nu ~k:1 in
  let edge_prof = ok (Defender.Matching_nash.solve_auto m1) in
  let is_size = List.length (Defender.Profile.vp_support_union edge_prof) in
  let base = Defender.Gain.defender_gain edge_prof in
  let points = ref [] in
  for k = 1 to is_size do
    let lifted = ok (Defender.Reduction.edge_to_tuple ~k edge_prof) in
    let gain = Defender.Gain.defender_gain lifted in
    Alcotest.check q "exact linear law" (Q.mul_int base k) gain;
    points := (float_of_int k, Q.to_float gain) :: !points
  done;
  (* The measured curve is exactly linear with slope nu/|IS|. *)
  let fit = Harness.Stats.linear_fit !points in
  Alcotest.(check (float 1e-9)) "slope nu/|IS|"
    (float_of_int nu /. float_of_int is_size)
    fit.Harness.Stats.slope;
  Alcotest.(check bool) "R^2 = 1" true (Harness.Stats.is_linear !points)

(* Scenario 3: Theorem 3.1 pure NE boundary, theorem vs brute force vs
   dynamics, on a family crossing the n = 2k boundary. *)
let test_pure_ne_boundary_triangulated () =
  for half_n = 1 to 4 do
    let n = 2 * half_n in
    if n >= 3 then begin
      let g = Gen.cycle n in
      let k = half_n in
      let m = Defender.Model.make ~graph:g ~nu:2 ~k in
      (* Cycle C_{2k} has a perfect matching: pure NE at k = n/2. *)
      Alcotest.(check bool)
        (Printf.sprintf "C%d k=%d exists" n k)
        true (Defender.Pure_nash.exists m);
      Alcotest.(check bool) "brute agrees" true (Defender.Pure_nash.exists_brute_force m);
      Alcotest.(check bool) "dynamics converge" true
        (Sim.Dynamics.is_converged (Sim.Dynamics.run (Prng.Rng.create 3) m ~max_steps:5000));
      (* One fewer edge of power: no pure NE (rho = n/2 > k-1). *)
      if k > 1 then begin
        let m' = Defender.Model.make ~graph:g ~nu:2 ~k:(k - 1) in
        Alcotest.(check bool) "below rho: none" false (Defender.Pure_nash.exists m');
        Alcotest.(check bool) "dynamics churn" false
          (Sim.Dynamics.is_converged
             (Sim.Dynamics.run (Prng.Rng.create 3) m' ~max_steps:2000))
      end
    end
  done

(* Scenario 4: serialization round trip carries equilibria: save a graph,
   reload it, recompute the NE, identical supports and gain. *)
let test_serialization_roundtrip_equilibrium () =
  let g = Gen.grid 2 4 in
  let text = Edge_list.to_string g in
  let g' = Edge_list.of_string text in
  let solve graph =
    let m = Defender.Model.make ~graph ~nu:3 ~k:2 in
    ok (Defender.Tuple_nash.a_tuple_auto m)
  in
  let a = solve g and b = solve g' in
  Alcotest.(check (list int)) "same attacker support"
    (Defender.Profile.vp_support_union a)
    (Defender.Profile.vp_support_union b);
  Alcotest.check q "same gain" (Defender.Gain.defender_gain a)
    (Defender.Gain.defender_gain b)

(* Scenario 5: simulator triangulation on the Edge model (k = 1), the
   original [7] setting, including per-player escape rates. *)
let test_edge_model_end_to_end () =
  let g = Gen.star 9 in
  let nu = 6 in
  let m = Defender.Model.make ~graph:g ~nu ~k:1 in
  let prof = ok (Defender.Matching_nash.solve_auto m) in
  (* star: IS = 8 leaves, each support edge = spoke; gain = nu/8. *)
  Alcotest.check q "gain nu/8" (Q.make nu 8) (Defender.Gain.defender_gain prof);
  let stats = Sim.Engine.play (Prng.Rng.create 77) prof ~rounds:30_000 in
  Alcotest.(check bool) "simulation agrees" true
    (Sim.Engine.agrees_with_analytic stats prof);
  for i = 0 to nu - 1 do
    let rate = Sim.Engine.escape_rate stats i in
    Alcotest.(check bool)
      (Printf.sprintf "escape rate of vp%d near 7/8" i)
      true
      (abs_float (rate -. 0.875) < 0.02)
  done

(* Scenario 6: defender policy ablation — at equilibrium the NE defense
   yields at least the gain of naive baselines against NE attackers. *)
let test_defense_ablation () =
  let g = Gen.path 8 in
  let m = Defender.Model.make ~graph:g ~nu:4 ~k:2 in
  let prof = ok (Defender.Tuple_nash.a_tuple_auto m) in
  let ne_attacker =
    Sim.Workload.Attacker_fixed (Defender.Profile.vp_strategy prof 0)
  in
  let run defender =
    (Sim.Workload.run (Prng.Rng.create 31) m ~attacker:ne_attacker ~defender
       ~rounds:15_000)
      .Sim.Workload.mean_caught
  in
  let ne_gain = run (Sim.Workload.Defender_fixed (Defender.Profile.tp_strategy prof)) in
  let uniform_gain = run Sim.Workload.Defender_uniform_tuple in
  let analytic = Q.to_float (Defender.Gain.defender_gain prof) in
  Alcotest.(check bool)
    (Printf.sprintf "NE empirical %.3f matches analytic %.3f" ne_gain analytic)
    true
    (abs_float (ne_gain -. analytic) < 0.1);
  (* Against NE attackers every defense gets at most the NE value
     (attackers are indifferent): uniform defense cannot beat it. *)
  Alcotest.(check bool)
    (Printf.sprintf "uniform %.3f <= NE %.3f + noise" uniform_gain ne_gain)
    true
    (uniform_gain <= ne_gain +. 0.1)

(* Scenario 7: cross-model consistency — A_tuple equals the lift of
   algorithm A's output through the reduction (they are the same
   construction, Theorem 4.12). *)
let test_a_tuple_equals_reduction_lift () =
  let g = Gen.complete_bipartite 3 4 in
  let nu = 3 and k = 2 in
  let partition =
    match Defender.Matching_nash.find_partition g with
    | Some p -> p
    | None -> Alcotest.fail "bipartite graph admits partition"
  in
  let m1 = Defender.Model.make ~graph:g ~nu ~k:1 in
  let mk = Defender.Model.make ~graph:g ~nu ~k in
  let edge_prof = ok (Defender.Matching_nash.solve m1 partition) in
  let via_reduction = ok (Defender.Reduction.edge_to_tuple ~k edge_prof) in
  let via_a_tuple = ok (Defender.Tuple_nash.a_tuple mk partition) in
  Alcotest.(check (list int)) "same attacker support"
    (Defender.Profile.vp_support_union via_reduction)
    (Defender.Profile.vp_support_union via_a_tuple);
  Alcotest.(check (list int)) "same defender edges"
    (Defender.Profile.tp_support_edges via_reduction)
    (Defender.Profile.tp_support_edges via_a_tuple);
  Alcotest.(check int) "same tuple count"
    (List.length (Defender.Profile.tp_support via_reduction))
    (List.length (Defender.Profile.tp_support via_a_tuple))

let () =
  Alcotest.run "integration"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "random bipartite pipeline (5 oracles)" `Slow
            test_full_pipeline_random_bipartite;
          Alcotest.test_case "power-of-defender sweep" `Quick
            test_power_of_the_defender_sweep;
          Alcotest.test_case "pure NE boundary triangulated" `Slow
            test_pure_ne_boundary_triangulated;
          Alcotest.test_case "serialization carries equilibria" `Quick
            test_serialization_roundtrip_equilibrium;
          Alcotest.test_case "edge model end to end" `Quick test_edge_model_end_to_end;
          Alcotest.test_case "defense ablation" `Slow test_defense_ablation;
          Alcotest.test_case "A_tuple = reduction lift" `Quick
            test_a_tuple_equals_reduction_lift;
        ] );
    ]
