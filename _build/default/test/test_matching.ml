(* Tests for the matching/covering substrate: predicates, Hopcroft–Karp,
   Edmonds blossom, edge covers, König, Hall/expander, baselines. *)

open Netgraph

let rng () = Prng.Rng.create 99

(* --- Checks --- *)

let test_is_matching () =
  let g = Gen.path 5 in
  Alcotest.(check bool) "alternating edges" true (Matching.Checks.is_matching g [ 0; 2 ]);
  Alcotest.(check bool) "adjacent edges" false (Matching.Checks.is_matching g [ 0; 1 ]);
  Alcotest.(check bool) "empty" true (Matching.Checks.is_matching g [])

let test_is_edge_cover () =
  let g = Gen.path 4 in
  Alcotest.(check bool) "ends" true (Matching.Checks.is_edge_cover g [ 0; 2 ]);
  Alcotest.(check bool) "middle only" false (Matching.Checks.is_edge_cover g [ 1 ]);
  Alcotest.(check bool) "all edges" true (Matching.Checks.is_edge_cover g [ 0; 1; 2 ])

let test_vertex_cover_and_is () =
  let g = Gen.cycle 4 in
  Alcotest.(check bool) "opposite corners cover C4" true
    (Matching.Checks.is_vertex_cover g [ 0; 2 ]);
  Alcotest.(check bool) "adjacent pair does not" false
    (Matching.Checks.is_vertex_cover g [ 0; 1 ]);
  Alcotest.(check bool) "independent" true
    (Matching.Checks.is_independent_set g [ 0; 2 ]);
  Alcotest.(check bool) "not independent" false
    (Matching.Checks.is_independent_set g [ 0; 1 ])

let test_covered_uncovered () =
  let g = Gen.path 4 in
  Alcotest.(check (list int)) "covered" [ 0; 1 ] (Matching.Checks.covered_vertices g [ 0 ]);
  Alcotest.(check (list int)) "uncovered" [ 2; 3 ]
    (Matching.Checks.uncovered_vertices g [ 0 ]);
  Alcotest.(check bool) "covers_vertices" true
    (Matching.Checks.covers_vertices g [ 0 ] [ 0; 1 ]);
  Alcotest.(check bool) "saturates fails" false
    (Matching.Checks.saturates g [ 0 ] [ 2 ])

(* --- Hopcroft–Karp --- *)

let test_hk_complete_bipartite () =
  let g = Gen.complete_bipartite 3 5 in
  let r = Matching.Hopcroft_karp.max_matching_bipartite g in
  Alcotest.(check int) "size min(a,b)" 3 r.Matching.Hopcroft_karp.size;
  Alcotest.(check bool) "is matching" true
    (Matching.Checks.is_matching g r.Matching.Hopcroft_karp.edges)

let test_hk_path () =
  let g = Gen.path 7 in
  let r = Matching.Hopcroft_karp.max_matching_bipartite g in
  Alcotest.(check int) "P7 matching" 3 r.Matching.Hopcroft_karp.size

let test_hk_sides () =
  (* Restrict to crossing edges only: a triangle with a pendant; sides
     {0} and {3} see only the pendant edge. *)
  let g = Graph.make ~n:4 [ (0, 1); (1, 2); (0, 2); (0, 3) ] in
  let r = Matching.Hopcroft_karp.max_matching g ~left:[ 0 ] ~right:[ 3 ] in
  Alcotest.(check int) "single crossing edge" 1 r.Matching.Hopcroft_karp.size;
  Alcotest.check_raises "overlapping sides"
    (Invalid_argument "Hopcroft_karp: sides intersect or repeat") (fun () ->
      ignore (Matching.Hopcroft_karp.max_matching g ~left:[ 0 ] ~right:[ 0 ]))

let test_hk_mate_consistency () =
  let g = Gen.random_bipartite (rng ()) ~a:10 ~b:12 ~p:0.2 in
  let r = Matching.Hopcroft_karp.max_matching_bipartite g in
  let mate = r.Matching.Hopcroft_karp.mate in
  Array.iteri
    (fun v w -> if w >= 0 then Alcotest.(check int) "mate involution" v mate.(w))
    mate

(* --- Blossom --- *)

let test_blossom_odd_cycle () =
  (* C5 needs blossom contraction; max matching is 2. *)
  Alcotest.(check int) "C5" 2 (Matching.Blossom.matching_number (Gen.cycle 5));
  Alcotest.(check int) "C7" 3 (Matching.Blossom.matching_number (Gen.cycle 7))

let test_blossom_complete () =
  Alcotest.(check int) "K4" 2 (Matching.Blossom.matching_number (Gen.complete 4));
  Alcotest.(check int) "K5" 2 (Matching.Blossom.matching_number (Gen.complete 5));
  Alcotest.(check int) "K6" 3 (Matching.Blossom.matching_number (Gen.complete 6))

let test_blossom_petersen () =
  (* The Petersen graph has a perfect matching. *)
  let outer = List.init 5 (fun i -> (i, (i + 1) mod 5)) in
  let spokes = List.init 5 (fun i -> (i, i + 5)) in
  let inner = List.init 5 (fun i -> (5 + i, 5 + ((i + 2) mod 5))) in
  let g = Graph.make ~n:10 (outer @ spokes @ inner) in
  Alcotest.(check int) "perfect matching" 5 (Matching.Blossom.matching_number g)

let test_blossom_structure () =
  let g = Gen.gnp_connected (rng ()) ~n:15 ~p:0.2 in
  let r = Matching.Blossom.max_matching g in
  Alcotest.(check bool) "is matching" true
    (Matching.Checks.is_matching g r.Matching.Blossom.edges);
  Alcotest.(check int) "size consistent" r.Matching.Blossom.size
    (List.length r.Matching.Blossom.edges);
  Array.iteri
    (fun v w ->
      if w >= 0 then
        Alcotest.(check int) "mate involution" v r.Matching.Blossom.mate.(w))
    r.Matching.Blossom.mate

let test_blossom_agrees_with_hk_on_bipartite () =
  let r = rng () in
  for _ = 1 to 20 do
    let g = Gen.random_bipartite r ~a:6 ~b:8 ~p:0.25 in
    Alcotest.(check int) "blossom = HK on bipartite"
      (Matching.Hopcroft_karp.max_matching_bipartite g).Matching.Hopcroft_karp.size
      (Matching.Blossom.matching_number g)
  done

(* Brute-force maximum matching for cross-validation. *)
let brute_matching_number g =
  let m = Graph.m g in
  let best = ref 0 in
  let rec go id chosen count =
    if id = m then best := max !best count
    else begin
      go (id + 1) chosen count;
      let e = Graph.edge g id in
      if (not (List.mem e.Graph.u chosen)) && not (List.mem e.Graph.v chosen) then
        go (id + 1) (e.Graph.u :: e.Graph.v :: chosen) (count + 1)
    end
  in
  go 0 [] 0;
  !best

let test_blossom_vs_brute () =
  let r = rng () in
  for _ = 1 to 15 do
    let g = Gen.gnp_connected r ~n:9 ~p:0.3 in
    Alcotest.(check int) "blossom = brute force" (brute_matching_number g)
      (Matching.Blossom.matching_number g)
  done

(* --- Edge cover --- *)

let test_rho_gallai () =
  let r = rng () in
  for _ = 1 to 15 do
    let g = Gen.gnp_connected r ~n:10 ~p:0.3 in
    Alcotest.(check int) "Gallai identity"
      (Graph.n g - Matching.Blossom.matching_number g)
      (Matching.Edge_cover.rho g)
  done

let test_minimum_edge_cover () =
  let g = Gen.star 6 in
  let cover = Matching.Edge_cover.minimum g in
  Alcotest.(check bool) "is cover" true (Matching.Checks.is_edge_cover g cover);
  Alcotest.(check int) "star cover size" 5 (List.length cover);
  let p4 = Gen.path 4 in
  let c4 = Matching.Edge_cover.minimum p4 in
  Alcotest.(check bool) "P4 cover" true (Matching.Checks.is_edge_cover p4 c4);
  Alcotest.(check int) "P4 rho" 2 (List.length c4)

let test_edge_cover_of_size () =
  let g = Gen.cycle 6 in
  Alcotest.(check bool) "rho(C6)=3 so size 2 impossible" true
    (Matching.Edge_cover.of_size g 2 = None);
  (match Matching.Edge_cover.of_size g 4 with
  | None -> Alcotest.fail "size 4 should exist"
  | Some c ->
      Alcotest.(check int) "exactly 4" 4 (List.length c);
      Alcotest.(check bool) "covers" true (Matching.Checks.is_edge_cover g c);
      Alcotest.(check int) "distinct" 4 (List.length (List.sort_uniq compare c)));
  Alcotest.(check bool) "k > m impossible" true (Matching.Edge_cover.of_size g 7 = None);
  Alcotest.(check bool) "exists_of_size" true (Matching.Edge_cover.exists_of_size g 3);
  Alcotest.(check bool) "not exists below rho" false
    (Matching.Edge_cover.exists_of_size g 2);
  Alcotest.check_raises "isolated vertex rejected"
    (Invalid_argument "Edge_cover: graph has an isolated vertex") (fun () ->
      ignore (Matching.Edge_cover.rho (Graph.make ~n:3 [ (0, 1) ])))

(* --- König --- *)

let test_koenig_small () =
  let g = Gen.complete_bipartite 2 3 in
  let k = Matching.Koenig.solve g in
  Alcotest.(check int) "VC size = matching size" 2
    (List.length k.Matching.Koenig.vertex_cover);
  Alcotest.(check bool) "VC is cover" true
    (Matching.Checks.is_vertex_cover g k.Matching.Koenig.vertex_cover);
  Alcotest.(check bool) "IS independent" true
    (Matching.Checks.is_independent_set g k.Matching.Koenig.independent_set);
  Alcotest.(check int) "partition" (Graph.n g)
    (List.length k.Matching.Koenig.vertex_cover
    + List.length k.Matching.Koenig.independent_set)

let test_koenig_theorem () =
  let r = rng () in
  for _ = 1 to 20 do
    let g = Gen.random_bipartite r ~a:7 ~b:9 ~p:0.2 in
    let k = Matching.Koenig.solve g in
    Alcotest.(check int) "König: |VC| = mu"
      k.Matching.Koenig.matching.Matching.Hopcroft_karp.size
      (List.length k.Matching.Koenig.vertex_cover);
    Alcotest.(check bool) "cover valid" true
      (Matching.Checks.is_vertex_cover g k.Matching.Koenig.vertex_cover);
    Alcotest.(check bool) "IS valid" true
      (Matching.Checks.is_independent_set g k.Matching.Koenig.independent_set)
  done

let test_koenig_vs_exact_is () =
  (* Gallai: alpha = n - tau; König tau = mu for bipartite. *)
  let r = rng () in
  for _ = 1 to 10 do
    let g = Gen.random_bipartite r ~a:5 ~b:6 ~p:0.3 in
    let k = Matching.Koenig.solve g in
    Alcotest.(check int) "max IS matches branch&bound"
      (Matching.Independent.independence_number g)
      (List.length k.Matching.Koenig.independent_set)
  done

let test_koenig_rejects_non_bipartite () =
  Alcotest.check_raises "odd cycle" (Invalid_argument "Koenig.solve: graph not bipartite")
    (fun () -> ignore (Matching.Koenig.solve (Gen.cycle 5)))

(* --- Hall / expander --- *)

let test_hall_path () =
  let g = Gen.path 4 in
  (* VC = {1,2}: N(1) ∩ IS = {0}, N(2) ∩ IS = {3}: expander. *)
  let v = Matching.Hall.check g ~vc:[ 1; 2 ] in
  Alcotest.(check bool) "P4 inner expander" true v.Matching.Hall.expander;
  (match v.Matching.Hall.saturating_matching with
  | Some m ->
      Alcotest.(check int) "saturating size" 2 (List.length m);
      Alcotest.(check bool) "saturates VC" true (Matching.Checks.saturates g m [ 1; 2 ])
  | None -> Alcotest.fail "expected saturating matching")

let test_hall_star () =
  let g = Gen.star 5 in
  (* VC = leaves: they all expand only into... leaves' neighbours = {0}. *)
  let v = Matching.Hall.check g ~vc:[ 1; 2; 3; 4 ] in
  Alcotest.(check bool) "leaves not expander" false v.Matching.Hall.expander;
  (match v.Matching.Hall.violating_set with
  | Some x ->
      let crossing =
        Graph.neighborhood g x |> List.filter (fun w -> not (List.mem w [ 1; 2; 3; 4 ]))
      in
      Alcotest.(check bool) "deficient witness" true
        (List.length crossing < List.length x)
  | None -> Alcotest.fail "expected violating set");
  (* VC = centre: N(0) ∩ leaves has 4 elements >= 1. *)
  Alcotest.(check bool) "centre is expander" true
    (Matching.Hall.check g ~vc:[ 0 ]).Matching.Hall.expander

let test_hall_matches_exhaustive () =
  let r = rng () in
  for _ = 1 to 30 do
    let g = Gen.gnp_connected r ~n:9 ~p:0.3 in
    (* Take VC = complement of a greedy independent set. *)
    let is = Matching.Maximal.greedy_independent_set g in
    let vc =
      List.filter (fun v -> not (List.mem v is)) (List.init (Graph.n g) Fun.id)
    in
    Alcotest.(check bool) "matching-based = exhaustive"
      (Matching.Hall.check_exhaustive g ~vc)
      (Matching.Hall.check g ~vc).Matching.Hall.expander
  done

let test_hall_violator_is_deficient () =
  let r = rng () in
  let checked = ref 0 in
  for _ = 1 to 40 do
    let g = Gen.gnp_connected r ~n:10 ~p:0.25 in
    let is = Matching.Maximal.greedy_independent_set g in
    let vc =
      List.filter (fun v -> not (List.mem v is)) (List.init (Graph.n g) Fun.id)
    in
    match Matching.Hall.check g ~vc with
    | { Matching.Hall.expander = false; violating_set = Some x; _ } ->
        incr checked;
        let in_vc v = List.mem v vc in
        let crossing =
          Graph.neighborhood g x |> List.filter (fun w -> not (in_vc w))
        in
        Alcotest.(check bool) "witness is deficient" true
          (List.length crossing < List.length x)
    | _ -> ()
  done;
  Alcotest.(check bool) "some non-expander sampled" true (!checked > 0)

(* --- Baselines --- *)

let test_maximal_matching () =
  let g = Gen.cycle 6 in
  let m = Matching.Maximal.maximal_matching g in
  Alcotest.(check bool) "is matching" true (Matching.Checks.is_matching g m);
  (* maximality: no edge extends it *)
  let covered = Matching.Checks.covered_vertices g m in
  Graph.iter_edges g ~f:(fun _ e ->
      Alcotest.(check bool) "maximal" true
        (List.mem e.Graph.u covered || List.mem e.Graph.v covered));
  (* half-approximation *)
  Alcotest.(check bool) "at least mu/2" true
    (2 * List.length m >= Matching.Blossom.matching_number g)

let test_two_approx_cover () =
  let g = Gen.gnp_connected (rng ()) ~n:12 ~p:0.3 in
  let vc = Matching.Maximal.two_approx_vertex_cover g in
  Alcotest.(check bool) "is vertex cover" true (Matching.Checks.is_vertex_cover g vc)

let test_greedy_independent () =
  let g = Gen.gnp_connected (rng ()) ~n:12 ~p:0.3 in
  let is = Matching.Maximal.greedy_independent_set g in
  Alcotest.(check bool) "independent" true (Matching.Checks.is_independent_set g is);
  Alcotest.(check bool) "nonempty" true (is <> [])

(* --- Exact independent set --- *)

let test_exact_independent () =
  Alcotest.(check int) "alpha(C5)" 2 (Matching.Independent.independence_number (Gen.cycle 5));
  Alcotest.(check int) "alpha(K5)" 1 (Matching.Independent.independence_number (Gen.complete 5));
  Alcotest.(check int) "alpha(star6)" 5 (Matching.Independent.independence_number (Gen.star 6));
  Alcotest.(check int) "alpha(P5)" 3 (Matching.Independent.independence_number (Gen.path 5));
  let best = Matching.Independent.maximum (Gen.grid 3 3) in
  Alcotest.(check int) "alpha(grid3x3)" 5 (List.length best);
  Alcotest.(check bool) "maximum is independent" true
    (Matching.Checks.is_independent_set (Gen.grid 3 3) best)

let test_all_maximal () =
  let g = Gen.cycle 4 in
  let sets = Matching.Independent.all_maximal g in
  Alcotest.(check (list (list int))) "C4 maximal ISs" [ [ 0; 2 ]; [ 1; 3 ] ] sets;
  let grid = Gen.grid 2 3 in
  List.iter
    (fun s ->
      Alcotest.(check bool) "each independent" true
        (Matching.Checks.is_independent_set grid s))
    (Matching.Independent.all_maximal grid)

(* --- Gallai–Edmonds --- *)

let test_gallai_edmonds_perfect () =
  (* Graphs with perfect matchings: D is empty. *)
  List.iter
    (fun g ->
      let ge = Matching.Gallai_edmonds.decompose g in
      Alcotest.(check (list int)) "D empty" [] ge.Matching.Gallai_edmonds.d;
      Alcotest.(check (list int)) "A empty" [] ge.Matching.Gallai_edmonds.a;
      Alcotest.(check bool) "perfect" true (Matching.Gallai_edmonds.has_perfect_matching g))
    [ Gen.path 4; Gen.cycle 6; Gen.complete 4; Gen.petersen () ]

let test_gallai_edmonds_star () =
  (* Star: every leaf is inessential, the centre is the separator. *)
  let ge = Matching.Gallai_edmonds.decompose (Gen.star 5) in
  Alcotest.(check (list int)) "D = leaves" [ 1; 2; 3; 4 ] ge.Matching.Gallai_edmonds.d;
  Alcotest.(check (list int)) "A = centre" [ 0 ] ge.Matching.Gallai_edmonds.a;
  Alcotest.(check (list int)) "C empty" [] ge.Matching.Gallai_edmonds.c;
  Alcotest.(check int) "mu" 1 ge.Matching.Gallai_edmonds.mu

let test_gallai_edmonds_odd_cycle () =
  (* C5 is factor-critical: every vertex inessential, A and C empty. *)
  let ge = Matching.Gallai_edmonds.decompose (Gen.cycle 5) in
  Alcotest.(check (list int)) "D = V" [ 0; 1; 2; 3; 4 ] ge.Matching.Gallai_edmonds.d;
  Alcotest.(check (list int)) "A empty" [] ge.Matching.Gallai_edmonds.a;
  Alcotest.(check bool) "inessential check" true
    (Matching.Gallai_edmonds.is_inessential (Gen.cycle 5) 0)

let test_gallai_edmonds_path5 () =
  (* P5 (odd path): the two ends and the middle are inessential. *)
  let ge = Matching.Gallai_edmonds.decompose (Gen.path 5) in
  Alcotest.(check (list int)) "D" [ 0; 2; 4 ] ge.Matching.Gallai_edmonds.d;
  Alcotest.(check (list int)) "A" [ 1; 3 ] ge.Matching.Gallai_edmonds.a

let ge_props =
  let gen =
    QCheck.make
      (QCheck.Gen.map
         (fun seed ->
           let r = Prng.Rng.create seed in
           Gen.gnp_connected r ~n:(3 + Prng.Rng.int r 8) ~p:0.3)
         QCheck.Gen.int)
  in
  [
    QCheck.Test.make ~name:"GE partition covers V" ~count:40 gen (fun g ->
        let ge = Matching.Gallai_edmonds.decompose g in
        List.length ge.Matching.Gallai_edmonds.d
        + List.length ge.Matching.Gallai_edmonds.a
        + List.length ge.Matching.Gallai_edmonds.c
        = Graph.n g);
    QCheck.Test.make ~name:"deficiency = |missed| matches D emptiness" ~count:40 gen
      (fun g ->
        let ge = Matching.Gallai_edmonds.decompose g in
        (Graph.n g - (2 * ge.Matching.Gallai_edmonds.mu) = 0)
        = (ge.Matching.Gallai_edmonds.d = []));
    QCheck.Test.make ~name:"C is perfectly matchable internally" ~count:40 gen
      (fun g ->
        let ge = Matching.Gallai_edmonds.decompose g in
        let c = ge.Matching.Gallai_edmonds.c in
        let keep = Array.make (Graph.n g) false in
        List.iter (fun v -> keep.(v) <- true) c;
        let sub_edges =
          Graph.fold_edges g ~init:[] ~f:(fun acc _ e ->
              if keep.(e.Graph.u) && keep.(e.Graph.v) then
                (e.Graph.u, e.Graph.v) :: acc
              else acc)
        in
        let sub = Graph.make ~n:(Graph.n g) sub_edges in
        2 * Matching.Blossom.matching_number sub >= List.length c);
  ]

(* --- Properties --- *)

let graph_gen =
  QCheck.make
    (QCheck.Gen.map
       (fun seed ->
         let r = Prng.Rng.create seed in
         Gen.gnp_connected r ~n:(3 + Prng.Rng.int r 9) ~p:0.3)
       QCheck.Gen.int)

let props =
  [
    QCheck.Test.make ~name:"blossom optimal vs brute force" ~count:60 graph_gen
      (fun g -> Matching.Blossom.matching_number g = brute_matching_number g);
    QCheck.Test.make ~name:"minimum edge cover has Gallai size" ~count:60 graph_gen
      (fun g ->
        List.length (Matching.Edge_cover.minimum g)
        = Graph.n g - Matching.Blossom.matching_number g);
    QCheck.Test.make ~name:"minimum edge cover covers" ~count:60 graph_gen (fun g ->
        Matching.Checks.is_edge_cover g (Matching.Edge_cover.minimum g));
    QCheck.Test.make ~name:"greedy IS independent" ~count:60 graph_gen (fun g ->
        Matching.Checks.is_independent_set g (Matching.Maximal.greedy_independent_set g));
    QCheck.Test.make ~name:"2-approx VC covers" ~count:60 graph_gen (fun g ->
        Matching.Checks.is_vertex_cover g (Matching.Maximal.two_approx_vertex_cover g));
  ]

let () =
  Alcotest.run "matching"
    [
      ( "checks",
        [
          Alcotest.test_case "is_matching" `Quick test_is_matching;
          Alcotest.test_case "is_edge_cover" `Quick test_is_edge_cover;
          Alcotest.test_case "vertex cover / IS" `Quick test_vertex_cover_and_is;
          Alcotest.test_case "covered/uncovered" `Quick test_covered_uncovered;
        ] );
      ( "hopcroft-karp",
        [
          Alcotest.test_case "complete bipartite" `Quick test_hk_complete_bipartite;
          Alcotest.test_case "path" `Quick test_hk_path;
          Alcotest.test_case "custom sides" `Quick test_hk_sides;
          Alcotest.test_case "mate consistency" `Quick test_hk_mate_consistency;
        ] );
      ( "blossom",
        [
          Alcotest.test_case "odd cycles" `Quick test_blossom_odd_cycle;
          Alcotest.test_case "complete graphs" `Quick test_blossom_complete;
          Alcotest.test_case "petersen" `Quick test_blossom_petersen;
          Alcotest.test_case "structure" `Quick test_blossom_structure;
          Alcotest.test_case "agrees with HK" `Quick test_blossom_agrees_with_hk_on_bipartite;
          Alcotest.test_case "vs brute force" `Quick test_blossom_vs_brute;
        ] );
      ( "edge-cover",
        [
          Alcotest.test_case "Gallai identity" `Quick test_rho_gallai;
          Alcotest.test_case "minimum cover" `Quick test_minimum_edge_cover;
          Alcotest.test_case "cover of size k" `Quick test_edge_cover_of_size;
        ] );
      ( "koenig",
        [
          Alcotest.test_case "small" `Quick test_koenig_small;
          Alcotest.test_case "theorem" `Quick test_koenig_theorem;
          Alcotest.test_case "vs exact IS" `Quick test_koenig_vs_exact_is;
          Alcotest.test_case "rejects non-bipartite" `Quick test_koenig_rejects_non_bipartite;
        ] );
      ( "hall",
        [
          Alcotest.test_case "path" `Quick test_hall_path;
          Alcotest.test_case "star" `Quick test_hall_star;
          Alcotest.test_case "matches exhaustive" `Quick test_hall_matches_exhaustive;
          Alcotest.test_case "violator deficient" `Quick test_hall_violator_is_deficient;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "maximal matching" `Quick test_maximal_matching;
          Alcotest.test_case "2-approx cover" `Quick test_two_approx_cover;
          Alcotest.test_case "greedy IS" `Quick test_greedy_independent;
        ] );
      ( "independent",
        [
          Alcotest.test_case "exact alpha" `Quick test_exact_independent;
          Alcotest.test_case "all maximal" `Quick test_all_maximal;
        ] );
      ( "gallai-edmonds",
        [
          Alcotest.test_case "perfect matchings" `Quick test_gallai_edmonds_perfect;
          Alcotest.test_case "star" `Quick test_gallai_edmonds_star;
          Alcotest.test_case "odd cycle" `Quick test_gallai_edmonds_odd_cycle;
          Alcotest.test_case "P5" `Quick test_gallai_edmonds_path5;
        ] );
      ( "properties",
        List.map (QCheck_alcotest.to_alcotest ~verbose:false) (props @ ge_props) );
    ]
