test/test_equilibria.ml: Alcotest Array Defender Dist Exact Format Fun Gen Graph List Netgraph Printf Prng
