test/test_rational.ml: Alcotest Exact List QCheck QCheck_alcotest
