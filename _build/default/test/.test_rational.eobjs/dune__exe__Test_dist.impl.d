test/test_dist.ml: Alcotest Dist Exact List Prng QCheck QCheck_alcotest
