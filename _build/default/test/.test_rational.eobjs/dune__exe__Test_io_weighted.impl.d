test/test_io_weighted.ml: Alcotest Char Defender Dist Exact Gen Graph Graph6 List Netgraph Option Prng QCheck QCheck_alcotest String
