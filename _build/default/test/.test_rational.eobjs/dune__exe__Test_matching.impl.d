test/test_matching.ml: Alcotest Array Fun Gen Graph List Matching Netgraph Prng QCheck QCheck_alcotest
