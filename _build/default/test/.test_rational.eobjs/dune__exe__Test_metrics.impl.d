test/test_metrics.ml: Alcotest Bipartite Gen Graph List Matching Metrics Netgraph Prng QCheck QCheck_alcotest Traverse
