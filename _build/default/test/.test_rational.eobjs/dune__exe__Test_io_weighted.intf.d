test/test_io_weighted.mli:
