test/test_graph.ml: Alcotest Array Bipartite Dot Edge_list Gen Graph List Netgraph Prng Props QCheck QCheck_alcotest String Traverse
