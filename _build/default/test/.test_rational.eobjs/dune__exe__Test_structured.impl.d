test/test_structured.ml: Alcotest Defender Exact Fun Gen Graph List Matching Netgraph Printf Prng QCheck QCheck_alcotest String
