test/test_integration.ml: Alcotest Defender Edge_list Exact Gen Harness List Netgraph Printf Prng Sim
