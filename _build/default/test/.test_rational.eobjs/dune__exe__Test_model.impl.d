test/test_model.ml: Alcotest Array Defender Dist Exact Fun Gen Graph List Netgraph Printf Prng QCheck QCheck_alcotest
