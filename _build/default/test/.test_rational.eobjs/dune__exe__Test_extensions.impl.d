test/test_extensions.ml: Alcotest Array Defender Dist Exact Gen Graph List Lp Matching Netgraph Option Printf Prng Sim
