test/test_sim.ml: Alcotest Array Defender Dist Exact Gen Graph List Netgraph Printf Prng Sim
