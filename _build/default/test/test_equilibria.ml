(* Tests for pure Nash equilibria (Theorem 3.1, Corollaries 3.2-3.3),
   best-response machinery, direct NE verification and the Theorem 3.4
   characterization. *)

open Netgraph
module Q = Exact.Q
module P = Defender.Pure_nash
module V = Defender.Verify
module C = Defender.Characterization

let q = Alcotest.testable Q.pp Q.equal
let exhaustive = V.Exhaustive 500_000

let model ~g ~nu ~k = Defender.Model.make ~graph:g ~nu ~k

(* --- Theorem 3.1: pure NE iff edge cover of size k --- *)

let test_pure_ne_small_graphs () =
  let k2 = Gen.path 2 in
  Alcotest.(check bool) "K2 k=1" true (P.exists (model ~g:k2 ~nu:2 ~k:1));
  let p3 = Gen.path 3 in
  Alcotest.(check bool) "P3 k=1" false (P.exists (model ~g:p3 ~nu:2 ~k:1));
  Alcotest.(check bool) "P3 k=2" true (P.exists (model ~g:p3 ~nu:2 ~k:2));
  let c4 = Gen.cycle 4 in
  Alcotest.(check bool) "C4 k=1" false (P.exists (model ~g:c4 ~nu:1 ~k:1));
  Alcotest.(check bool) "C4 k=2" true (P.exists (model ~g:c4 ~nu:1 ~k:2));
  let s5 = Gen.star 5 in
  Alcotest.(check bool) "star5 k=3" false (P.exists (model ~g:s5 ~nu:1 ~k:3));
  Alcotest.(check bool) "star5 k=4" true (P.exists (model ~g:s5 ~nu:1 ~k:4))

let test_pure_ne_construction () =
  let g = Gen.complete 4 in
  let m = model ~g ~nu:3 ~k:2 in
  match P.construct m with
  | None -> Alcotest.fail "K4 with k=2 admits a pure NE"
  | Some profile ->
      Alcotest.(check bool) "constructed profile verifies" true
        (P.is_pure_ne m profile);
      Alcotest.(check int) "defender catches everyone" 3
        (Defender.Profit.pure_tp m profile)

let test_pure_ne_none_constructed () =
  let g = Gen.path 5 in
  Alcotest.(check bool) "P5 k=1 no construction" true
    (P.construct (model ~g ~nu:1 ~k:1) = None)

let test_is_pure_ne_rejects () =
  let g = Gen.path 3 in
  let m = model ~g ~nu:1 ~k:1 in
  (* Defender on edge (0,1); attacker on 2 escapes: defender deviates. *)
  let prof =
    Defender.Profile.make_pure m ~vp_choices:[ 2 ]
      ~tp_choice:(Defender.Tuple.of_list g [ 0 ])
  in
  Alcotest.(check bool) "defender wants to deviate" false (P.is_pure_ne m prof);
  (* Attacker on covered vertex 1 while 2 is free: attacker deviates. *)
  let prof2 =
    Defender.Profile.make_pure m ~vp_choices:[ 1 ]
      ~tp_choice:(Defender.Tuple.of_list g [ 0 ])
  in
  Alcotest.(check bool) "attacker wants to deviate" false (P.is_pure_ne m prof2)

let test_theorem31_vs_brute_force_atlas () =
  List.iter
    (fun (name, g) ->
      let max_k = min 3 (Graph.m g) in
      for k = 1 to max_k do
        let m = model ~g ~nu:2 ~k in
        Alcotest.(check bool)
          (Printf.sprintf "%s k=%d theorem = brute" name k)
          (P.exists_brute_force m) (P.exists m)
      done)
    (Gen.atlas_small ())

let test_corollary33 () =
  let check g k expected_exists =
    let m = model ~g ~nu:1 ~k in
    Alcotest.(check bool)
      (Printf.sprintf "n=%d k=%d" (Graph.n g) k)
      expected_exists (P.exists m);
    if P.cor33_applies m then
      Alcotest.(check bool) "cor 3.3 forces non-existence" false (P.exists m)
  in
  check (Gen.path 2) 1 true;
  (* n = 3 = 2k+1 with k=1: no pure NE *)
  check (Gen.path 3) 1 false;
  check (Gen.cycle 4) 2 true;
  check (Gen.cycle 5) 2 false;
  (* boundary n = 2k with a perfect matching *)
  check (Gen.cycle 6) 3 true

(* --- Best response --- *)

let sample_profile () =
  (* P4, nu=2, k=1; attackers uniform on {0,3}; defender uniform {e0,e2}. *)
  let g = Gen.path 4 in
  let m = model ~g ~nu:2 ~k:1 in
  let tuples = List.map (fun id -> Defender.Tuple.of_list g [ id ]) [ 0; 2 ] in
  (g, m, Defender.Profile.uniform m ~vp_support:[ 0; 3 ] ~tp_support:tuples)

let test_vp_best_value () =
  let _, _, prof = sample_profile () in
  (* Every vertex has hit probability 1/2 under {e0, e2} uniform. *)
  Alcotest.check q "vp best value" (Q.make 1 2)
    (Defender.Best_response.vp_best_value prof)

let test_vp_best_vertex_prefers_uncovered () =
  let g = Gen.path 4 in
  let m = model ~g ~nu:1 ~k:1 in
  let prof =
    Defender.Profile.uniform m ~vp_support:[ 0 ]
      ~tp_support:[ Defender.Tuple.of_list g [ 0 ] ]
  in
  (* Defender always on edge (0,1): vertices 2,3 are free. *)
  let v = Defender.Best_response.vp_best_vertex prof in
  Alcotest.(check bool) "free vertex" true (v = 2 || v = 3);
  Alcotest.check q "value 1" Q.one (Defender.Best_response.vp_best_value prof)

let test_tp_best_exhaustive () =
  let g = Gen.path 4 in
  let m = model ~g ~nu:2 ~k:1 in
  let prof =
    Defender.Profile.uniform m ~vp_support:[ 1 ]
      ~tp_support:[ Defender.Tuple.of_list g [ 2 ] ]
  in
  (* Both attackers on vertex 1: best edge catches both. *)
  Alcotest.check q "best catches 2" (Q.of_int 2)
    (Defender.Best_response.tp_best_value_exhaustive prof);
  let best = Defender.Best_response.tp_best_tuple_exhaustive prof in
  Alcotest.(check bool) "best tuple covers vertex 1" true
    (Defender.Tuple.covers g best 1)

let test_tp_upper_bound_sound () =
  let _, _, prof = sample_profile () in
  Alcotest.(check bool) "upper bound >= exhaustive max" true
    (Q.( >= )
       (Defender.Best_response.tp_upper_bound prof)
       (Defender.Best_response.tp_best_value_exhaustive prof))

let test_tp_greedy_sound () =
  let _, _, prof = sample_profile () in
  Alcotest.(check bool) "greedy <= exhaustive max" true
    (Q.( <= )
       (Defender.Best_response.tp_greedy_value prof)
       (Defender.Best_response.tp_best_value_exhaustive prof))

(* --- Verify --- *)

let ne_p6_k2 () =
  let g = Gen.path 6 in
  let m = model ~g ~nu:4 ~k:2 in
  match Defender.Tuple_nash.a_tuple_auto m with
  | Ok prof -> prof
  | Error e -> Alcotest.fail ("a_tuple_auto failed: " ^ e)

let test_verify_confirms_constructed_ne () =
  let prof = ne_p6_k2 () in
  Alcotest.(check bool) "exhaustive verify" true
    (V.verdict_is_confirmed (V.mixed_ne exhaustive prof));
  Alcotest.(check bool) "certificate verify" true
    (V.verdict_is_confirmed (V.mixed_ne V.Certificate prof))

let test_verify_refutes_perturbed () =
  let prof = ne_p6_k2 () in
  (* Move one attacker onto a covered VC vertex: its hit probability rises
     strictly, so the profile stops being an NE. *)
  let perturbed = Defender.Profile.replace_vp prof 0 (Dist.Finite.point 0) in
  (match V.mixed_ne exhaustive perturbed with
  | V.Refuted _ -> ()
  | other -> Alcotest.fail ("expected refutation, got " ^ V.verdict_to_string other));
  (* Degrade the defender: all mass on a single tuple. *)
  let first_tuple = List.hd (Defender.Profile.tp_support prof) in
  let lazy_defender = Defender.Profile.replace_tp prof [ (first_tuple, Q.one) ] in
  match V.mixed_ne exhaustive lazy_defender with
  | V.Refuted _ -> ()
  | other -> Alcotest.fail ("expected refutation, got " ^ V.verdict_to_string other)

let test_verify_vp_side_detects () =
  let g = Gen.path 4 in
  let m = model ~g ~nu:1 ~k:1 in
  (* Defender always scans (0,1); attacker splits mass between covered 0
     and free 3: misallocated mass on 0. *)
  let prof =
    Defender.Profile.make_mixed m
      ~vp:[ Dist.Finite.uniform [ 0; 3 ] ]
      ~tp:[ (Defender.Tuple.of_list g [ 0 ], Q.one) ]
  in
  match V.vp_side prof with
  | V.Refuted _ -> ()
  | other -> Alcotest.fail ("expected vp refutation, got " ^ V.verdict_to_string other)

let test_tp_side_detects_unequal_support () =
  let g = Gen.star 4 in
  let m = model ~g ~nu:1 ~k:1 in
  (* Attacker mass on {0,1}: support edge (0,1) has load 1,
     support edge (0,2) has load 1/2 -> defender support not indifferent. *)
  let prof =
    Defender.Profile.make_mixed m
      ~vp:[ Dist.Finite.uniform [ 0; 1 ] ]
      ~tp:
        [
          (Defender.Tuple.of_list g [ 0 ], Q.make 1 2);
          (Defender.Tuple.of_list g [ 1 ], Q.make 1 2);
        ]
  in
  match V.tp_side V.Certificate prof with
  | V.Refuted _ -> ()
  | other -> Alcotest.fail ("expected refutation, got " ^ V.verdict_to_string other)

let test_certificate_unknown_when_loose () =
  (* Defender plays only edge (2,3) of P4 while the attacker hides on 0:
     support loads are equal (single tuple) but below the top-1 bound, and
     the certificate cannot decide optimality. *)
  let g = Gen.path 4 in
  let m = model ~g ~nu:1 ~k:1 in
  let prof =
    Defender.Profile.make_mixed m
      ~vp:[ Dist.Finite.point 0 ]
      ~tp:[ (Defender.Tuple.of_list g [ 2 ], Q.one) ]
  in
  (match V.tp_side V.Certificate prof with
  | V.Unknown _ -> ()
  | other -> Alcotest.fail ("expected unknown, got " ^ V.verdict_to_string other));
  (* The exhaustive mode settles it as a refutation. *)
  match V.tp_side exhaustive prof with
  | V.Refuted _ -> ()
  | other -> Alcotest.fail ("expected refutation, got " ^ V.verdict_to_string other)

(* --- Characterization (Theorem 3.4) --- *)

let test_characterization_confirms_ne () =
  let prof = ne_p6_k2 () in
  let report = C.check exhaustive prof in
  Alcotest.(check bool) "cond 1 edge cover" true report.C.cond1_edge_cover;
  Alcotest.(check bool) "cond 1 vertex cover" true report.C.cond1_vertex_cover;
  Alcotest.(check bool) "cond 2a" true report.C.cond2a_uniform_minimal_hit;
  Alcotest.(check bool) "cond 2b" true report.C.cond2b_tp_probability_sums;
  Alcotest.(check bool) "cond 3b" true report.C.cond3b_total_load;
  Alcotest.(check bool) "holds" true (C.holds exhaustive prof)

let random_uniform_profile rng =
  let g = Gen.gnp_connected rng ~n:(4 + Prng.Rng.int rng 3) ~p:0.4 in
  let nu = 1 + Prng.Rng.int rng 3 in
  let k = 1 + Prng.Rng.int rng (min 2 (Graph.m g)) in
  let m = model ~g ~nu ~k in
  let vertices = Array.init (Graph.n g) Fun.id in
  let support_size = 1 + Prng.Rng.int rng (Graph.n g) in
  let vp_support =
    Array.to_list (Prng.Rng.sample_without_replacement rng ~count:support_size vertices)
  in
  let edge_ids = Array.init (Graph.m g) Fun.id in
  let tuples =
    List.init
      (1 + Prng.Rng.int rng 3)
      (fun _ ->
        Defender.Tuple.of_list g
          (Array.to_list (Prng.Rng.sample_without_replacement rng ~count:k edge_ids)))
    |> List.sort_uniq Defender.Tuple.compare
  in
  Defender.Profile.uniform m ~vp_support ~tp_support:tuples

let test_characterization_agrees_with_direct () =
  (* Theorem 3.4 vs the definitional best-response check on random
     profiles (mostly non-NE, occasionally NE).  Per DESIGN.md, the
     theorem's necessity direction provably holds whenever IP_tp < nu;
     the only admissible disagreements are "saturating" NEs in which the
     defender already catches every attacker with probability 1. *)
  let rng = Prng.Rng.create 4242 in
  for _ = 1 to 80 do
    let prof = random_uniform_profile rng in
    let nu = Defender.Model.nu (Defender.Profile.model prof) in
    let direct = V.verdict_is_confirmed (V.mixed_ne exhaustive prof) in
    let characterized = C.holds exhaustive prof in
    let saturating =
      Q.equal (Defender.Profit.expected_tp prof) (Q.of_int nu)
    in
    if direct <> characterized && not (direct && saturating) then
      Alcotest.failf "disagreement (direct %b vs characterization %b) on %s" direct
        characterized
        (Format.asprintf "%a" Defender.Profile.pp prof)
  done

let test_characterization_gap_single_tuple () =
  (* Known gap in the paper's Theorem 3.4 (documented in DESIGN.md): when
     the defender plays a single tuple covering every vertex, the profile
     is an NE by the definitional check, yet condition 1's vertex-cover
     half can fail because attackers need not sit on every support edge. *)
  let g = Gen.path 4 in
  let m = model ~g ~nu:1 ~k:2 in
  let full_cover = Defender.Tuple.of_list g [ 0; 2 ] in
  let prof =
    Defender.Profile.make_mixed m
      ~vp:[ Dist.Finite.point 0 ]
      ~tp:[ (full_cover, Q.one) ]
  in
  Alcotest.(check bool) "direct check: NE" true
    (V.verdict_is_confirmed (V.mixed_ne exhaustive prof));
  let report = C.check exhaustive prof in
  Alcotest.(check bool) "vertex-cover condition fails" false
    report.C.cond1_vertex_cover

let test_characterization_gap_saturating_mixed () =
  (* The genuinely mixed counterexample from DESIGN.md: both support
     tuples cover all attacker mass (IP_tp = nu), the profile is a direct
     NE, and the vertex-cover half of condition 1 still fails. *)
  let g = Graph.make ~n:4 [ (2, 3); (0, 2); (0, 3); (0, 1); (1, 2) ] in
  let m = model ~g ~nu:2 ~k:2 in
  let t1 = Defender.Tuple.of_list g [ 0; 3 ] in
  let t2 = Defender.Tuple.of_list g [ 2; 4 ] in
  let prof =
    Defender.Profile.make_mixed m
      ~vp:[ Dist.Finite.point 1; Dist.Finite.point 1 ]
      ~tp:[ (t1, Q.make 1 2); (t2, Q.make 1 2) ]
  in
  Alcotest.(check bool) "direct check: NE" true
    (V.verdict_is_confirmed (V.mixed_ne exhaustive prof));
  Alcotest.(check bool) "saturating: IP_tp = nu" true
    (Q.equal (Defender.Profit.expected_tp prof) (Q.of_int 2));
  let report = C.check exhaustive prof in
  Alcotest.(check bool) "vertex-cover condition fails" false
    report.C.cond1_vertex_cover;
  Alcotest.(check bool) "all other conditions hold" true
    (report.C.cond1_edge_cover && report.C.cond2a_uniform_minimal_hit
   && report.C.cond2b_tp_probability_sums && report.C.cond3b_total_load)

let test_characterization_refutes_non_cover () =
  let g = Gen.path 4 in
  let m = model ~g ~nu:1 ~k:1 in
  (* Support edge {1} = (1,2) is not an edge cover. *)
  let prof =
    Defender.Profile.uniform m ~vp_support:[ 0 ]
      ~tp_support:[ Defender.Tuple.of_list g [ 1 ] ]
  in
  let report = C.check exhaustive prof in
  Alcotest.(check bool) "edge cover fails" false report.C.cond1_edge_cover;
  Alcotest.(check bool) "overall fails" false (C.holds exhaustive prof)

let test_characterization_condition_3b () =
  let g = Gen.path 4 in
  let m = model ~g ~nu:2 ~k:1 in
  let prof =
    Defender.Profile.uniform m ~vp_support:[ 0; 3 ]
      ~tp_support:[ Defender.Tuple.of_list g [ 0 ]; Defender.Tuple.of_list g [ 2 ] ]
  in
  let report = C.check exhaustive prof in
  Alcotest.(check bool) "3b holds" true report.C.cond3b_total_load

let () =
  Alcotest.run "equilibria"
    [
      ( "pure (thm 3.1)",
        [
          Alcotest.test_case "small graphs" `Quick test_pure_ne_small_graphs;
          Alcotest.test_case "construction" `Quick test_pure_ne_construction;
          Alcotest.test_case "no construction" `Quick test_pure_ne_none_constructed;
          Alcotest.test_case "is_pure_ne rejects" `Quick test_is_pure_ne_rejects;
          Alcotest.test_case "theorem vs brute force" `Quick
            test_theorem31_vs_brute_force_atlas;
          Alcotest.test_case "corollary 3.3" `Quick test_corollary33;
        ] );
      ( "best response",
        [
          Alcotest.test_case "vp best value" `Quick test_vp_best_value;
          Alcotest.test_case "vp prefers uncovered" `Quick
            test_vp_best_vertex_prefers_uncovered;
          Alcotest.test_case "tp exhaustive" `Quick test_tp_best_exhaustive;
          Alcotest.test_case "upper bound sound" `Quick test_tp_upper_bound_sound;
          Alcotest.test_case "greedy sound" `Quick test_tp_greedy_sound;
        ] );
      ( "verify",
        [
          Alcotest.test_case "confirms constructed NE" `Quick
            test_verify_confirms_constructed_ne;
          Alcotest.test_case "refutes perturbed" `Quick test_verify_refutes_perturbed;
          Alcotest.test_case "vp side detects" `Quick test_verify_vp_side_detects;
          Alcotest.test_case "tp unequal support" `Quick
            test_tp_side_detects_unequal_support;
          Alcotest.test_case "certificate unknown when loose" `Quick
            test_certificate_unknown_when_loose;
        ] );
      ( "characterization (thm 3.4)",
        [
          Alcotest.test_case "confirms NE" `Quick test_characterization_confirms_ne;
          Alcotest.test_case "agrees with direct check" `Quick
            test_characterization_agrees_with_direct;
          Alcotest.test_case "gap: single full-cover tuple" `Quick
            test_characterization_gap_single_tuple;
          Alcotest.test_case "gap: saturating mixed defender" `Quick
            test_characterization_gap_saturating_mixed;
          Alcotest.test_case "refutes non-cover" `Quick
            test_characterization_refutes_non_cover;
          Alcotest.test_case "condition 3b" `Quick test_characterization_condition_3b;
        ] );
    ]
