(* Tests for the structured equilibria: matching NE (algorithm A),
   k-matching NE (Lemma 4.1, algorithm A_tuple), the Theorem 4.5
   reduction, the gain laws (Corollaries 4.7/4.10) and the bipartite
   pipeline (Theorem 5.1). *)

open Netgraph
module Q = Exact.Q
module MN = Defender.Matching_nash
module TN = Defender.Tuple_nash
module V = Defender.Verify

let q = Alcotest.testable Q.pp Q.equal
let exhaustive = V.Exhaustive 500_000

let model ~g ~nu ~k = Defender.Model.make ~graph:g ~nu ~k

let ok = function
  | Ok x -> x
  | Error e -> Alcotest.fail ("unexpected error: " ^ e)

(* --- Matching NE / algorithm A --- *)

let test_partition_of_is () =
  let g = Gen.path 4 in
  let p = MN.partition_of_is g [ 0; 2 ] in
  Alcotest.(check (list int)) "is" [ 0; 2 ] p.MN.is;
  Alcotest.(check (list int)) "vc" [ 1; 3 ] p.MN.vc;
  Alcotest.check_raises "dependent set rejected"
    (Invalid_argument "Matching_nash.partition_of_is: set is not independent")
    (fun () -> ignore (MN.partition_of_is g [ 0; 1 ]))

let test_partition_admits () =
  let g = Gen.path 4 in
  Alcotest.(check bool) "ends+middle admits" true
    (MN.partition_admits g (MN.partition_of_is g [ 0; 2 ]));
  let star = Gen.star 5 in
  Alcotest.(check bool) "star leaves admit" true
    (MN.partition_admits star (MN.partition_of_is star [ 1; 2; 3; 4 ]));
  Alcotest.(check bool) "star centre does not" false
    (MN.partition_admits star (MN.partition_of_is star [ 0 ]))

let test_find_partition_bipartite () =
  List.iter
    (fun g ->
      match MN.find_partition g with
      | None -> Alcotest.fail "bipartite graph must admit a partition"
      | Some p ->
          Alcotest.(check bool) "admits" true (MN.partition_admits g p))
    [ Gen.path 6; Gen.cycle 8; Gen.star 7; Gen.complete_bipartite 3 4; Gen.grid 3 3 ]

let test_find_partition_general () =
  (* Odd cycle C5: IS of size 2, VC of size 3 — VC cannot expand into 2
     vertices, so no matching NE partition exists. *)
  Alcotest.(check bool) "C5 has none" true (MN.find_partition (Gen.cycle 5) = None);
  (* K4 likewise. *)
  Alcotest.(check bool) "K4 has none" true (MN.find_partition (Gen.complete 4) = None);
  (* C5 plus a pendant on each vertex: the pendants form an IS and each
     cycle vertex matches its own pendant. *)
  let edges = List.init 5 (fun i -> (i, (i + 1) mod 5)) @ List.init 5 (fun i -> (i, i + 5)) in
  let sun = Graph.make ~n:10 edges in
  match MN.find_partition sun with
  | None -> Alcotest.fail "sun graph admits a partition"
  | Some p -> Alcotest.(check bool) "sun admits" true (MN.partition_admits sun p)

let test_all_partitions_invariant () =
  (* Selection independence (DESIGN.md): every admissible partition has
     |IS| = alpha = rho, and matching NEs exist iff tau = mu. *)
  List.iter
    (fun (name, g) ->
      if Graph.n g <= 20 then begin
        let all = MN.all_partitions g in
        let alpha = Matching.Independent.independence_number g in
        let rho = Matching.Edge_cover.rho g in
        let mu = Matching.Blossom.matching_number g in
        let tau = Graph.n g - alpha in
        List.iter
          (fun p ->
            Alcotest.(check int) (name ^ " |IS| = alpha") alpha
              (List.length p.MN.is);
            Alcotest.(check int) (name ^ " |IS| = rho") rho (List.length p.MN.is))
          all;
        Alcotest.(check bool) (name ^ " exists iff Koenig-Egervary") (tau = mu)
          (all <> [])
      end)
    (Gen.atlas_small ())

let test_extremal_partitions () =
  match MN.extremal_partitions (Gen.path 4) with
  | None -> Alcotest.fail "P4 admits partitions"
  | Some (best, worst) ->
      Alcotest.(check int) "sizes equal" (List.length best.MN.is)
        (List.length worst.MN.is);
      Alcotest.(check bool) "C5 has none" true (MN.extremal_partitions (Gen.cycle 5) = None)

let test_support_edges_structure () =
  let g = Gen.path 6 in
  let p = MN.partition_of_is g [ 1; 3; 5 ] in
  let edges = ok (MN.support_edges g p) in
  Alcotest.(check int) "one edge per IS vertex" 3 (List.length edges);
  Alcotest.(check bool) "edge cover" true (Matching.Checks.is_edge_cover g edges);
  (* every support edge has exactly one endpoint in IS *)
  List.iter
    (fun id ->
      let e = Graph.edge g id in
      let in_is v = List.mem v p.MN.is in
      Alcotest.(check bool) "crosses partition" true (in_is e.Graph.u <> in_is e.Graph.v))
    edges

let test_support_edges_error () =
  let star = Gen.star 5 in
  match MN.support_edges star (MN.partition_of_is star [ 0 ]) with
  | Error msg ->
      Alcotest.(check bool) "mentions expander" true
        (String.length msg > 0)
  | Ok _ -> Alcotest.fail "centre-only IS cannot work"

let test_algorithm_a_produces_matching_ne () =
  List.iter
    (fun g ->
      let m = model ~g ~nu:3 ~k:1 in
      let prof = ok (MN.solve_auto m) in
      Alcotest.(check bool) "matching configuration" true
        (MN.is_matching_configuration prof);
      Alcotest.(check bool) "lemma 2.1 covers" true (MN.lemma21_cover_conditions prof);
      Alcotest.(check bool) "verified NE" true
        (V.verdict_is_confirmed (V.mixed_ne exhaustive prof)))
    [ Gen.path 5; Gen.cycle 6; Gen.star 6; Gen.complete_bipartite 2 4; Gen.grid 2 3 ]

let test_matching_ne_gain () =
  (* IP_tp = nu / |IS| in a matching NE. *)
  let g = Gen.path 6 in
  let m = model ~g ~nu:5 ~k:1 in
  let prof = ok (MN.solve m (MN.partition_of_is g [ 1; 3; 5 ])) in
  Alcotest.check q "gain = nu/|IS|" (Q.make 5 3) (Defender.Gain.defender_gain prof)

(* --- k-matching configurations / A_tuple --- *)

let test_cyclic_tuples_claim49 () =
  (* Claim 4.9: delta = E/gcd(E,k) tuples; each edge in k/gcd(E,k). *)
  let g = Gen.complete_bipartite 3 4 in
  (* 12 edges *)
  let check e_num k =
    let edges = List.init e_num Fun.id in
    let tuples = TN.cyclic_tuples g edges ~k in
    let delta = TN.delta ~e_num ~k in
    Alcotest.(check int) (Printf.sprintf "delta(%d,%d)" e_num k) delta
      (List.length tuples);
    let expected_mult = TN.multiplicity ~e_num ~k in
    List.iter
      (fun id ->
        let count =
          List.length (List.filter (fun t -> Defender.Tuple.contains_edge t id) tuples)
        in
        Alcotest.(check int) "multiplicity" expected_mult count)
      edges;
    (* tuples are distinct *)
    Alcotest.(check int) "distinct tuples" delta
      (List.length (List.sort_uniq Defender.Tuple.compare tuples))
  in
  check 6 2;
  check 6 4;
  check 5 3;
  check 12 5;
  check 7 7;
  check 9 3

let test_cyclic_tuples_guards () =
  let g = Gen.path 4 in
  Alcotest.check_raises "k too big"
    (Invalid_argument "Tuple_nash.cyclic_tuples: k outside [1, |edges|]") (fun () ->
      ignore (TN.cyclic_tuples g [ 0; 1 ] ~k:3));
  Alcotest.check_raises "repeated edges"
    (Invalid_argument "Tuple_nash.cyclic_tuples: repeated edge id") (fun () ->
      ignore (TN.cyclic_tuples g [ 0; 0 ] ~k:1))

let test_gcd_lcm () =
  Alcotest.(check int) "gcd" 3 (TN.gcd 12 9);
  Alcotest.(check int) "gcd coprime" 1 (TN.gcd 7 5);
  Alcotest.(check int) "lcm" 36 (TN.lcm 12 9);
  Alcotest.(check int) "delta" 4 (TN.delta ~e_num:12 ~k:9);
  Alcotest.(check int) "multiplicity" 3 (TN.multiplicity ~e_num:12 ~k:9)

let test_a_tuple_on_families () =
  let cases =
    [
      ("P6", Gen.path 6, 2);
      ("P6", Gen.path 6, 3);
      ("C8", Gen.cycle 8, 3);
      ("star7", Gen.star 7, 4);
      ("K(3,4)", Gen.complete_bipartite 3 4, 2);
      ("grid 3x3", Gen.grid 3 3, 3);
    ]
  in
  List.iter
    (fun (name, g, k) ->
      let m = model ~g ~nu:4 ~k in
      let prof = ok (TN.a_tuple_auto m) in
      Alcotest.(check bool) (name ^ " k-matching config") true
        (TN.is_k_matching_configuration prof);
      Alcotest.(check bool) (name ^ " NE support") true
        (TN.is_k_matching_ne_support prof);
      Alcotest.(check bool)
        (name ^ " certificate verifies")
        true
        (V.verdict_is_confirmed (V.mixed_ne V.Certificate prof));
      (* exhaustive verification when the tuple space is small enough *)
      match Defender.Model.tuple_space_size m with
      | Some c when c <= 200_000 ->
          Alcotest.(check bool) (name ^ " exhaustive verifies") true
            (V.verdict_is_confirmed (V.mixed_ne (V.Exhaustive 200_000) prof))
      | _ -> ())
    cases

let test_a_tuple_k_too_large () =
  (* P4: IS = {0,2} or similar of size 2; k = 3 > |IS| must fail. *)
  let g = Gen.path 4 in
  let m = model ~g ~nu:2 ~k:3 in
  match TN.a_tuple_auto m with
  | Error msg ->
      Alcotest.(check bool) "mentions bound" true
        (String.length msg > 0)
  | Ok _ -> Alcotest.fail "k > |IS| must be infeasible"

let test_k_matching_rejects_violations () =
  let g = Gen.path 6 in
  let m = model ~g ~nu:2 ~k:2 in
  (* Support with unequal tuple multiplicity per edge: edges {0,2},{0,4}:
     edge 0 appears twice, 2 and 4 once. *)
  let t1 = Defender.Tuple.of_list g [ 0; 2 ] in
  let t2 = Defender.Tuple.of_list g [ 0; 4 ] in
  let prof = Defender.Profile.uniform m ~vp_support:[ 1; 3; 5 ] ~tp_support:[ t1; t2 ] in
  Alcotest.(check bool) "multiplicity violated" false
    (TN.is_k_matching_configuration prof);
  (* Dependent attacker support. *)
  let t3 = Defender.Tuple.of_list g [ 0; 2 ] and t4 = Defender.Tuple.of_list g [ 2; 4 ] in
  ignore t4;
  let prof2 = Defender.Profile.uniform m ~vp_support:[ 0; 1 ] ~tp_support:[ t3 ] in
  Alcotest.(check bool) "dependent support" false (TN.is_k_matching_configuration prof2)

(* --- Reduction (Theorem 4.5) --- *)

let test_reduction_forward () =
  (* k-matching NE -> matching NE of the edge model. *)
  let g = Gen.grid 2 3 in
  let m = model ~g ~nu:3 ~k:2 in
  let prof = ok (TN.a_tuple_auto m) in
  let edge_prof = Defender.Reduction.tuple_to_edge prof in
  Alcotest.(check int) "edge model k" 1
    (Defender.Model.k (Defender.Profile.model edge_prof));
  Alcotest.(check bool) "matching configuration" true
    (MN.is_matching_configuration edge_prof);
  Alcotest.(check bool) "verified NE" true
    (V.verdict_is_confirmed (V.mixed_ne exhaustive edge_prof))

let test_reduction_backward () =
  (* matching NE -> k-matching NE. *)
  let g = Gen.cycle 8 in
  let m1 = model ~g ~nu:4 ~k:1 in
  let edge_prof = ok (MN.solve_auto m1) in
  let lifted = ok (Defender.Reduction.edge_to_tuple ~k:3 edge_prof) in
  Alcotest.(check int) "lifted k" 3 (Defender.Model.k (Defender.Profile.model lifted));
  Alcotest.(check bool) "k-matching NE support" true
    (TN.is_k_matching_ne_support lifted);
  Alcotest.(check bool) "verified" true
    (V.verdict_is_confirmed (V.mixed_ne V.Certificate lifted))

let test_reduction_round_trip () =
  List.iter
    (fun (g, k) ->
      let m1 = model ~g ~nu:2 ~k:1 in
      let edge_prof = ok (MN.solve_auto m1) in
      Alcotest.(check bool) "round trip preserves supports" true
        (Defender.Reduction.round_trip_preserves ~k edge_prof))
    [ (Gen.path 6, 2); (Gen.cycle 6, 3); (Gen.star 8, 5); (Gen.grid 3 3, 4) ]

let test_reduction_rejects_bad_input () =
  let g = Gen.path 4 in
  let m = model ~g ~nu:1 ~k:1 in
  (* Not a matching configuration: dependent support. *)
  let bad =
    Defender.Profile.uniform m ~vp_support:[ 0; 1 ]
      ~tp_support:[ Defender.Tuple.of_list g [ 0 ] ]
  in
  Alcotest.(check bool) "edge_to_tuple rejects" true
    (try
       ignore (Defender.Reduction.edge_to_tuple ~k:2 bad);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "tuple_to_edge rejects" true
    (try
       ignore (Defender.Reduction.tuple_to_edge bad);
       false
     with Invalid_argument _ -> true)

let test_reduction_infeasible_k () =
  let g = Gen.path 4 in
  let m1 = model ~g ~nu:1 ~k:1 in
  let edge_prof = ok (MN.solve_auto m1) in
  match Defender.Reduction.edge_to_tuple ~k:3 edge_prof with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "k beyond |D(tp)| must fail"

(* --- Gain (Corollaries 4.7 / 4.10) --- *)

let test_gain_linear_in_k () =
  let g = Gen.cycle 8 in
  let nu = 6 in
  let m1 = model ~g ~nu ~k:1 in
  let edge_prof = ok (MN.solve_auto m1) in
  let base_gain = Defender.Gain.defender_gain edge_prof in
  let is_size = List.length (Defender.Profile.vp_support_union edge_prof) in
  for k = 1 to is_size do
    let lifted = ok (Defender.Reduction.edge_to_tuple ~k edge_prof) in
    let gain = Defender.Gain.defender_gain lifted in
    Alcotest.check q
      (Printf.sprintf "IP_tp(k=%d) = k * IP_tp(1)" k)
      (Q.mul_int base_gain k) gain;
    Alcotest.check q "matches prediction"
      (Defender.Gain.predicted_gain (Defender.Profile.model lifted) ~is_size)
      gain;
    Alcotest.check q "ratio is k" (Q.of_int k)
      (Defender.Gain.gain_ratio lifted edge_prof)
  done

let test_escape_probability () =
  let g = Gen.path 6 in
  let m = model ~g ~nu:4 ~k:2 in
  let prof = ok (TN.a_tuple_auto m) in
  let is_size = List.length (Defender.Profile.vp_support_union prof) in
  let predicted = Defender.Gain.predicted_escape_probability m ~is_size in
  for i = 0 to 3 do
    Alcotest.check q
      (Printf.sprintf "escape probability of vp%d" i)
      predicted
      (Defender.Gain.escape_probability prof i)
  done;
  (* protection quality = k/|IS| *)
  Alcotest.check q "protection quality" (Q.make 2 3)
    (Defender.Gain.protection_quality prof)

(* --- Bipartite pipeline (Theorem 5.1) --- *)

let test_pipeline_bipartite_families () =
  List.iter
    (fun (name, g, k) ->
      let m = model ~g ~nu:3 ~k in
      let outcome = ok (Defender.Pipeline.solve m) in
      Alcotest.(check bool) (name ^ " k-matching NE") true
        (TN.is_k_matching_ne_support outcome.Defender.Pipeline.profile);
      Alcotest.(check bool) (name ^ " verified") true
        (V.verdict_is_confirmed
           (V.mixed_ne V.Certificate outcome.Defender.Pipeline.profile));
      Alcotest.(check bool) (name ^ " edge profile is matching NE") true
        (MN.is_matching_configuration outcome.Defender.Pipeline.edge_profile))
    [
      ("P7", Gen.path 7, 2);
      ("C10", Gen.cycle 10, 4);
      ("K(3,5)", Gen.complete_bipartite 3 5, 3);
      ("grid 3x4", Gen.grid 3 4, 5);
      ("tree", Gen.binary_tree 3, 4);
    ]

let test_pipeline_rejects_non_bipartite () =
  let g = Gen.cycle 5 in
  let m = model ~g ~nu:1 ~k:1 in
  Alcotest.check_raises "odd cycle" (Invalid_argument "Pipeline: graph is not bipartite")
    (fun () -> ignore (Defender.Pipeline.solve m))

let test_pipeline_max_feasible_k () =
  (* K(a,b): minimum VC = min(a,b), IS = max(a,b). *)
  Alcotest.(check int) "K(3,5)" 5 (Defender.Pipeline.max_feasible_k (Gen.complete_bipartite 3 5));
  (* star: VC = centre, IS = leaves *)
  Alcotest.(check int) "star 7" 6 (Defender.Pipeline.max_feasible_k (Gen.star 7));
  (* P4: IS max independent = 2 *)
  Alcotest.(check int) "P4" 2 (Defender.Pipeline.max_feasible_k (Gen.path 4));
  let g = Gen.complete_bipartite 2 3 in
  let feasible = Defender.Pipeline.max_feasible_k g in
  let m_ok = model ~g ~nu:2 ~k:feasible in
  ignore (ok (Defender.Pipeline.solve m_ok));
  if feasible + 1 <= Graph.m g then
    match Defender.Pipeline.solve (model ~g ~nu:2 ~k:(feasible + 1)) with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "beyond max feasible k must fail"

(* --- random bipartite property --- *)

let props =
  let bip_gen =
    QCheck.make
      (QCheck.Gen.map
         (fun seed ->
           let r = Prng.Rng.create seed in
           let a = 2 + Prng.Rng.int r 4 and b = 2 + Prng.Rng.int r 5 in
           Gen.random_bipartite r ~a ~b ~p:0.3)
         QCheck.Gen.int)
  in
  [
    QCheck.Test.make ~name:"pipeline produces verified k-matching NE" ~count:40 bip_gen
      (fun g ->
        let feasible = Defender.Pipeline.max_feasible_k g in
        QCheck.assume (feasible >= 1);
        let k = 1 + (Graph.m g mod feasible) in
        let m = model ~g ~nu:3 ~k in
        match Defender.Pipeline.solve m with
        | Error _ -> false
        | Ok outcome ->
            TN.is_k_matching_ne_support outcome.Defender.Pipeline.profile
            && V.verdict_is_confirmed
                 (V.mixed_ne V.Certificate outcome.Defender.Pipeline.profile));
    QCheck.Test.make ~name:"gain ratio k across reduction" ~count:40 bip_gen (fun g ->
        let m1 = model ~g ~nu:4 ~k:1 in
        match MN.solve_auto m1 with
        | Error _ -> false
        | Ok edge_prof -> (
            let is_size = List.length (Defender.Profile.vp_support_union edge_prof) in
            QCheck.assume (is_size >= 2);
            let k = 1 + (Graph.n g mod is_size) in
            match Defender.Reduction.edge_to_tuple ~k edge_prof with
            | Error _ -> false
            | Ok lifted ->
                Q.equal (Q.of_int k) (Defender.Gain.gain_ratio lifted edge_prof)));
  ]

let () =
  Alcotest.run "structured"
    [
      ( "matching NE (algorithm A)",
        [
          Alcotest.test_case "partition_of_is" `Quick test_partition_of_is;
          Alcotest.test_case "partition_admits" `Quick test_partition_admits;
          Alcotest.test_case "find_partition bipartite" `Quick
            test_find_partition_bipartite;
          Alcotest.test_case "find_partition general" `Quick test_find_partition_general;
          Alcotest.test_case "all partitions invariant" `Quick
            test_all_partitions_invariant;
          Alcotest.test_case "extremal partitions" `Quick test_extremal_partitions;
          Alcotest.test_case "support edges" `Quick test_support_edges_structure;
          Alcotest.test_case "support edges error" `Quick test_support_edges_error;
          Alcotest.test_case "produces matching NE" `Quick
            test_algorithm_a_produces_matching_ne;
          Alcotest.test_case "gain nu/|IS|" `Quick test_matching_ne_gain;
        ] );
      ( "k-matching / A_tuple",
        [
          Alcotest.test_case "claim 4.9 cyclic tuples" `Quick test_cyclic_tuples_claim49;
          Alcotest.test_case "cyclic guards" `Quick test_cyclic_tuples_guards;
          Alcotest.test_case "gcd/lcm/delta" `Quick test_gcd_lcm;
          Alcotest.test_case "A_tuple on families" `Quick test_a_tuple_on_families;
          Alcotest.test_case "k > |IS| infeasible" `Quick test_a_tuple_k_too_large;
          Alcotest.test_case "rejects violations" `Quick test_k_matching_rejects_violations;
        ] );
      ( "reduction (thm 4.5)",
        [
          Alcotest.test_case "forward" `Quick test_reduction_forward;
          Alcotest.test_case "backward" `Quick test_reduction_backward;
          Alcotest.test_case "round trip" `Quick test_reduction_round_trip;
          Alcotest.test_case "rejects bad input" `Quick test_reduction_rejects_bad_input;
          Alcotest.test_case "infeasible k" `Quick test_reduction_infeasible_k;
        ] );
      ( "gain (cor 4.7/4.10)",
        [
          Alcotest.test_case "linear in k" `Quick test_gain_linear_in_k;
          Alcotest.test_case "escape probability" `Quick test_escape_probability;
        ] );
      ( "bipartite pipeline (thm 5.1)",
        [
          Alcotest.test_case "families" `Quick test_pipeline_bipartite_families;
          Alcotest.test_case "rejects non-bipartite" `Quick
            test_pipeline_rejects_non_bipartite;
          Alcotest.test_case "max feasible k" `Quick test_pipeline_max_feasible_k;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~verbose:false) props);
    ]
