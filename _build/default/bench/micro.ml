(* B1-B6: Bechamel microbenchmarks of the computational kernels.  Results
   are printed as a plain table (ns/run from the OLS estimate against the
   monotonic clock), keeping the output diffable. *)

open Bechamel
open Toolkit

let make_tests () =
  let rng = Prng.Rng.create 12321 in
  let bip = Netgraph.Gen.random_bipartite rng ~a:100 ~b:120 ~p:0.05 in
  let gnp = Netgraph.Gen.gnp_connected rng ~n:120 ~p:0.06 in
  let grid = Netgraph.Gen.grid 8 10 in
  let grid_model = Defender.Model.make ~graph:grid ~nu:6 ~k:5 in
  let grid_partition =
    match Defender.Matching_nash.find_partition grid with
    | Some p -> p
    | None -> failwith "grid partition"
  in
  let edge_prof =
    match
      Defender.Matching_nash.solve
        (Defender.Model.make ~graph:grid ~nu:6 ~k:1)
        grid_partition
    with
    | Ok p -> p
    | Error e -> failwith e
  in
  let ne_prof =
    match Defender.Tuple_nash.a_tuple grid_model grid_partition with
    | Ok p -> p
    | Error e -> failwith e
  in
  let sim_rng = Prng.Rng.create 777 in
  [
    Test.make ~name:"B1 hopcroft-karp (n=220 bipartite)"
      (Staged.stage (fun () ->
           ignore (Matching.Hopcroft_karp.max_matching_bipartite bip)));
    Test.make ~name:"B2 blossom (n=120 gnp)"
      (Staged.stage (fun () -> ignore (Matching.Blossom.max_matching gnp)));
    Test.make ~name:"B3 min edge cover (n=120 gnp)"
      (Staged.stage (fun () -> ignore (Matching.Edge_cover.minimum gnp)));
    Test.make ~name:"B4 A_tuple (grid 8x10, k=5)"
      (Staged.stage (fun () ->
           ignore (Defender.Tuple_nash.a_tuple grid_model grid_partition)));
    Test.make ~name:"B5 reduction lift k=5 (grid 8x10)"
      (Staged.stage (fun () ->
           ignore (Defender.Reduction.edge_to_tuple ~k:5 edge_prof)));
    Test.make ~name:"B6 simulator 100 rounds (grid 8x10)"
      (Staged.stage (fun () ->
           ignore (Sim.Engine.play sim_rng ne_prof ~rounds:100)));
  ]

let run_all () =
  let tests = Test.make_grouped ~name:"kernels" (make_tests ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table =
    Harness.Table.create ~title:"B1-B6: microbenchmarks (Bechamel OLS)"
      ~columns:[ "kernel"; "time/run"; "r^2" ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let estimate =
        match Analyze.OLS.estimates ols_result with
        | Some (t :: _) -> t
        | _ -> nan
      in
      let r2 = Option.value (Analyze.OLS.r_square ols_result) ~default:nan in
      let human =
        if estimate > 1e9 then Printf.sprintf "%.3f s" (estimate /. 1e9)
        else if estimate > 1e6 then Printf.sprintf "%.3f ms" (estimate /. 1e6)
        else if estimate > 1e3 then Printf.sprintf "%.3f us" (estimate /. 1e3)
        else Printf.sprintf "%.1f ns" estimate
      in
      rows := (name, human, Printf.sprintf "%.4f" r2) :: !rows)
    results;
  List.iter
    (fun (name, time, r2) -> Harness.Table.add_row table [ name; time; r2 ])
    (List.sort compare !rows);
  Harness.Table.print table;
  print_newline ()
