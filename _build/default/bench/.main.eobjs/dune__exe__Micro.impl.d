bench/micro.ml: Analyze Bechamel Benchmark Defender Harness Hashtbl Instance List Matching Measure Netgraph Option Printf Prng Sim Staged Test Time Toolkit
