bench/exp_util.ml: Defender Exact Netgraph
