bench/exp_tables.ml: Array Defender Exact Exp_util Fun Gen Graph Harness List Matching Netgraph Printf Prng Result Sim String
