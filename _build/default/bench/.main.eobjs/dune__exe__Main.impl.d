bench/main.ml: Array Exp_figures Exp_tables Micro Printf Sys
