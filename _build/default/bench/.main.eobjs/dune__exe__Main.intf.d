bench/main.mli:
