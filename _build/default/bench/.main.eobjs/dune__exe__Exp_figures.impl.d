bench/exp_figures.ml: Array Defender Exact Exp_util Fun Gc Gen Graph Harness List Matching Netgraph Printf Prng Sim
