(* Shared helpers for the experiment harness. *)

module Q = Exact.Q

let ok = function
  | Ok x -> x
  | Error e -> failwith ("experiment setup failed: " ^ e)

let model ~g ~nu ~k = Defender.Model.make ~graph:g ~nu ~k

let yesno b = if b then "yes" else "no"

(* Atlas restricted to instances whose full tuple space stays enumerable
   for the k values a table sweeps. *)
let small_atlas () = Netgraph.Gen.atlas_small ()

let q_str = Q.to_string

let checkmark ok = if ok then "ok" else "MISMATCH"
