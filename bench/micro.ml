(* B0-B18: microbenchmarks and kernel-correctness checks.

   B0 ports the former standalone smoke pass: exact kernel = naive
   equality assertions (payoff tables, incremental deviation chains,
   fictitious play bit-for-bit) as a checked experiment that runs at both
   scales.

   B1-B12 are Bechamel microbenchmarks of the computational kernels, one
   registered experiment each (ns/run from the OLS estimate against the
   monotonic clock).  B7-B12 pair the Payoff_kernel query path against
   the naive support-rescanning oracle (~naive:true) on the acceptance
   instance (grid 10x12, n = 120, k = 5, nu = 6); each naive experiment
   also reports the speedup against its kernel partner from the same run
   (so B7 before B8, etc. — registration order guarantees this in a full
   sweep) and, at full scale, checks speedup >= 2x.  At smoke scale the
   Bechamel quota is reduced and timing checks are skipped.

   B13 gates the numeric tower (lib/rational): the small fast path is
   timed against an in-process copy of the seed's fixed-width arithmetic
   (overhead <= 10% at full scale), promotion cost is reported, and the
   B7 sweep is compared against the committed BENCH_2.json baseline.

   B14 gates the fault-isolated parallel runner: a 4-worker sweep of a
   fixed experiment subset must reassemble the timing-stripped
   sequential artifact byte for byte — counter metrics included, so the
   Obs determinism contract is gated here too — with the wall-clock
   speedup reported as timing cells.

   B15 gates the observability layer's disabled cost: the instrumented
   B7 best-response sweep with recording off against an uninstrumented
   in-process copy (<= 1.05x at full scale), counters-on cost reported
   informationally.

   B16 gates the persistent worker pool: dispatching many near-empty
   jobs through Harness.Pool must beat fork-per-job at full scale, and a
   pooled sweep of the B14 subset must reassemble the timing-stripped
   sequential artifact byte for byte.

   B17 gates the CSR graph substrate: construction, neighbour traversal
   and Hopcroft-Karp on the flat offset/neighbour arrays against an
   in-process copy of the seed's boxed tuple-row representation, ns per
   edge each, with per-edge ratios gated at full scale.

   B18 gates the query daemon's canonical-instance solve cache: a forked
   daemon on a private socket answers the same solve cold then warm; the
   warm reply must be a cache hit with a byte-identical payload, and at
   full scale its round-trip latency must sit well below the cold
   solve's. *)

open Bechamel
open Toolkit
module E = Harness.Experiment
module Q = Exact.Q

(* --- shared instances, built lazily once per scale --- *)

type instances = {
  bip : Netgraph.Graph.t;
  gnp : Netgraph.Graph.t;
  grid_model : Defender.Model.t;
  grid_partition : Defender.Matching_nash.partition;
  edge_prof : Defender.Profile.mixed;
  ne_prof : Defender.Profile.mixed;
  kmodel : Defender.Model.t; (* kernel-vs-naive instance *)
  kprof : Defender.Profile.mixed;
  ktag : string;
}

(* A matching NE on a grid, the standing configuration for the
   kernel-vs-naive pairs. *)
let kernel_instance ~rows ~cols ~nu ~k =
  let grid = Netgraph.Gen.grid rows cols in
  let model = Defender.Model.make ~graph:grid ~nu ~k in
  let partition =
    match Defender.Matching_nash.find_partition grid with
    | Some p -> p
    | None -> failwith "grid partition"
  in
  let prof =
    match Defender.Tuple_nash.a_tuple model partition with
    | Ok p -> p
    | Error e -> failwith e
  in
  (model, prof)

let build_instances scale =
  let rng = Prng.Rng.create 12321 in
  let smoke = scale = E.Smoke in
  let bip =
    if smoke then Netgraph.Gen.random_bipartite rng ~a:30 ~b:40 ~p:0.1
    else Netgraph.Gen.random_bipartite rng ~a:100 ~b:120 ~p:0.05
  in
  let gnp =
    if smoke then Netgraph.Gen.gnp_connected rng ~n:40 ~p:0.12
    else Netgraph.Gen.gnp_connected rng ~n:120 ~p:0.06
  in
  let grid =
    if smoke then Netgraph.Gen.grid 4 5 else Netgraph.Gen.grid 8 10
  in
  let k = if smoke then 2 else 5 in
  let grid_model = Defender.Model.make ~graph:grid ~nu:6 ~k in
  let grid_partition =
    match Defender.Matching_nash.find_partition grid with
    | Some p -> p
    | None -> failwith "grid partition"
  in
  let edge_prof =
    match
      Defender.Matching_nash.solve
        (Defender.Model.make ~graph:grid ~nu:6 ~k:1)
        grid_partition
    with
    | Ok p -> p
    | Error e -> failwith e
  in
  let ne_prof =
    match Defender.Tuple_nash.a_tuple grid_model grid_partition with
    | Ok p -> p
    | Error e -> failwith e
  in
  let kmodel, kprof =
    if smoke then kernel_instance ~rows:4 ~cols:5 ~nu:3 ~k:2
    else kernel_instance ~rows:10 ~cols:12 ~nu:6 ~k:5
  in
  let ktag = if smoke then "grid 4x5, k=2" else "grid 10x12, k=5" in
  { bip; gnp; grid_model; grid_partition; edge_prof; ne_prof; kmodel; kprof; ktag }

let instance_cache : (E.scale, instances) Hashtbl.t = Hashtbl.create 2

let get ctx =
  let scale = E.scale ctx in
  match Hashtbl.find_opt instance_cache scale with
  | Some i -> i
  | None ->
      (* Unobserved: the cache is per process, so a sequential sweep
         builds the instances once while every parallel worker rebuilds
         them — letting the build record would make counter deltas
         depend on scheduling, breaking the B14 determinism gate. *)
      let i = Harness.Obs.unobserved (fun () -> build_instances scale) in
      Hashtbl.replace instance_cache scale i;
      i

(* --- Bechamel plumbing --- *)

(* Unobserved: Bechamel decides its iteration counts from the time
   quota, so any counters recorded inside would be a function of machine
   speed — exactly what the Obs determinism contract forbids in an
   artifact.  The timing estimates are unaffected (recording was a no-op
   on these paths to begin with; B15 gates that). *)
let analyze ~quota tests =
  Harness.Obs.unobserved @@ fun () ->
  let grouped = Test.make_grouped ~name:"kernels" tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~stabilize:true () in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let estimate =
        match Analyze.OLS.estimates ols_result with
        | Some (t :: _) -> t
        | _ -> nan
      in
      let r2 = Option.value (Analyze.OLS.r_square ols_result) ~default:nan in
      rows := (name, estimate, r2) :: !rows)
    results;
  List.sort compare !rows

let human_time estimate =
  if estimate > 1e9 then Printf.sprintf "%.3f s" (estimate /. 1e9)
  else if estimate > 1e6 then Printf.sprintf "%.3f ms" (estimate /. 1e6)
  else if estimate > 1e3 then Printf.sprintf "%.3f us" (estimate /. 1e3)
  else Printf.sprintf "%.1f ns" estimate

(* OLS estimates (ns/run) from the current sweep, for the speedup pairs.
   Keyed by experiment id; replaced on re-run. *)
let estimates : (string, float) Hashtbl.t = Hashtbl.create 16

let bench ctx ~id ~name thunk =
  let quota = if E.is_smoke ctx then 0.02 else 0.5 in
  let estimate, r2 =
    match analyze ~quota [ Test.make ~name (Staged.stage thunk) ] with
    | (_, e, r) :: _ -> (e, r)
    | [] -> (nan, nan)
  in
  Hashtbl.replace estimates id estimate;
  let table =
    Harness.Table.create ~title:name ~columns:[ "time/run"; "r^2" ]
  in
  Harness.Table.add_row table [ human_time estimate; Printf.sprintf "%.4f" r2 ];
  E.out ctx (Harness.Table.to_string table);
  E.measure ctx "ns_per_run" (E.Float estimate);
  E.measure ctx "r_squared" (E.Float r2);
  ignore
    (E.check ctx
       ~label:(id ^ ": OLS estimate is positive and finite")
       (Float.is_finite estimate && estimate > 0.0));
  estimate

(* For the naive half of a kernel/naive pair: report (and at full scale,
   check) the speedup against the partner's estimate from this sweep. *)
let speedup ctx ~id ~kernel_id ~label slow =
  (match Hashtbl.find_opt estimates kernel_id with
  | Some fast when fast > 0.0 && Float.is_finite slow ->
      let s = slow /. fast in
      E.outf ctx "%s speedup (naive/kernel): %.1fx\n" label s;
      E.measure ctx "speedup_vs_kernel" (E.Float s);
      if not (E.is_smoke ctx) then
        ignore
          (E.check ctx
             ~label:(id ^ ": kernel at least 2x faster than naive")
             (s >= 2.0))
  | _ ->
      E.outf ctx "%s speedup: n/a (kernel estimate missing — run %s first)\n"
        label kernel_id);
  E.out ctx "\n"

(* --- B0: exact kernel = naive assertions (both scales) --- *)

let assert_kernel_equals_naive ctx ~label prof =
  let g = Defender.Model.graph (Defender.Profile.model prof) in
  let all_equal =
    Seq.for_all
      (fun v ->
        Q.equal (Defender.Profile.hit_prob prof v)
          (Defender.Profile.hit_prob ~naive:true prof v)
        && Q.equal
             (Defender.Profile.expected_load prof v)
             (Defender.Profile.expected_load ~naive:true prof v))
      (Seq.init (Netgraph.Graph.n g) Fun.id)
    && Seq.for_all
         (fun id ->
           Q.equal
             (Defender.Profile.expected_load_edge prof id)
             (Defender.Profile.expected_load_edge ~naive:true prof id))
         (Seq.init (Netgraph.Graph.m g) Fun.id)
  in
  ignore (E.check ctx ~label:(label ^ ": kernel tables = naive oracle") all_equal)

let b0 ctx =
  (* the original standalone smoke instance: small and deterministic *)
  let model, prof = kernel_instance ~rows:4 ~cols:5 ~nu:3 ~k:2 in
  let g = Defender.Model.graph model in
  assert_kernel_equals_naive ctx ~label:"a_tuple NE" prof;
  (* A chain of incremental deviations must stay exactly equal to the
     oracle (and to a from-scratch rebuild, checked transitively). *)
  let rng = Prng.Rng.create 31 in
  let deviated = ref prof in
  for step = 1 to 6 do
    let player = Prng.Rng.int rng (Defender.Model.nu model) in
    let size = 1 + Prng.Rng.int rng (Netgraph.Graph.n g) in
    let support =
      Array.to_list
        (Prng.Rng.sample_without_replacement rng ~count:size
           (Array.init (Netgraph.Graph.n g) Fun.id))
    in
    deviated :=
      Defender.Profile.replace_vp !deviated player (Dist.Finite.uniform support);
    assert_kernel_equals_naive ctx
      ~label:(Printf.sprintf "replace_vp chain step %d" step)
      !deviated
  done;
  (match Defender.Profile.tp_support !deviated with
  | first :: _ ->
      deviated := Defender.Profile.replace_tp !deviated [ (first, Q.one) ];
      assert_kernel_equals_naive ctx ~label:"replace_tp collapse" !deviated
  | [] -> ignore (E.check ctx ~label:"non-empty tp support" false));
  (* Incremental and history-rescanning fictitious play are bit-for-bit
     identical on the same seed. *)
  let a = Sim.Fictitious.run (Prng.Rng.create 99) model ~rounds:40 in
  let b = Sim.Fictitious.run ~naive:true (Prng.Rng.create 99) model ~rounds:40 in
  ignore
    (E.check ctx ~label:"fictitious naive = incremental (bit-for-bit)"
       (a.Sim.Fictitious.avg_gain = b.Sim.Fictitious.avg_gain
       && a.Sim.Fictitious.gain_series = b.Sim.Fictitious.gain_series
       && a.Sim.Fictitious.attack_frequency = b.Sim.Fictitious.attack_frequency
       && a.Sim.Fictitious.scan_frequency = b.Sim.Fictitious.scan_frequency));
  E.out ctx "B0: kernel = naive exact-equality assertions (grid 4x5, nu=3, k=2)\n\n"

(* --- B1-B6: core algorithm benchmarks --- *)

let b1 ctx =
  let i = get ctx in
  ignore
    (bench ctx ~id:"B1"
       ~name:
         (Printf.sprintf "B1 hopcroft-karp (n=%d bipartite)"
            (Netgraph.Graph.n i.bip))
       (fun () -> ignore (Matching.Hopcroft_karp.max_matching_bipartite i.bip)))

let b2 ctx =
  let i = get ctx in
  ignore
    (bench ctx ~id:"B2"
       ~name:(Printf.sprintf "B2 blossom (n=%d gnp)" (Netgraph.Graph.n i.gnp))
       (fun () -> ignore (Matching.Blossom.max_matching i.gnp)))

let b3 ctx =
  let i = get ctx in
  ignore
    (bench ctx ~id:"B3"
       ~name:
         (Printf.sprintf "B3 min edge cover (n=%d gnp)" (Netgraph.Graph.n i.gnp))
       (fun () -> ignore (Matching.Edge_cover.minimum i.gnp)))

let b4 ctx =
  let i = get ctx in
  ignore
    (bench ctx ~id:"B4"
       ~name:
         (Printf.sprintf "B4 A_tuple (grid, k=%d)" (Defender.Model.k i.grid_model))
       (fun () ->
         ignore (Defender.Tuple_nash.a_tuple i.grid_model i.grid_partition)))

let b5 ctx =
  let i = get ctx in
  let k = Defender.Model.k i.grid_model in
  ignore
    (bench ctx ~id:"B5"
       ~name:(Printf.sprintf "B5 reduction lift k=%d (grid)" k)
       (fun () -> ignore (Defender.Reduction.edge_to_tuple ~k i.edge_prof)))

let b6 ctx =
  let i = get ctx in
  let sim_rng = Prng.Rng.create 777 in
  ignore
    (bench ctx ~id:"B6" ~name:"B6 simulator 100 rounds (grid)" (fun () ->
         ignore (Sim.Engine.play sim_rng i.ne_prof ~rounds:100)))

(* --- B7-B12: kernel vs naive pairs --- *)

(* One best-response sweep: the attacker scans every vertex's hit
   probability, the defender greedily scans every edge's load. *)
let br_sweep ?naive prof =
  ignore (Defender.Best_response.vp_best_value ?naive prof);
  ignore (Defender.Best_response.tp_greedy_value ?naive prof)

let b7 ctx =
  let i = get ctx in
  ignore
    (bench ctx ~id:"B7"
       ~name:(Printf.sprintf "B7 BR sweep, kernel (%s)" i.ktag)
       (fun () -> br_sweep i.kprof))

let b8 ctx =
  let i = get ctx in
  let slow =
    bench ctx ~id:"B8"
      ~name:(Printf.sprintf "B8 BR sweep, naive (%s)" i.ktag)
      (fun () -> br_sweep ~naive:true i.kprof)
  in
  speedup ctx ~id:"B8" ~kernel_id:"B7" ~label:"BR sweep (B8/B7)" slow

let b9 ctx =
  let i = get ctx in
  ignore
    (bench ctx ~id:"B9"
       ~name:(Printf.sprintf "B9 characterization, kernel (%s)" i.ktag)
       (fun () ->
         ignore
           (Defender.Characterization.check Defender.Verify.Certificate i.kprof)))

let b10 ctx =
  let i = get ctx in
  let slow =
    bench ctx ~id:"B10"
      ~name:(Printf.sprintf "B10 characterization, naive (%s)" i.ktag)
      (fun () ->
        ignore
          (Defender.Characterization.check ~naive:true
             Defender.Verify.Certificate i.kprof))
  in
  speedup ctx ~id:"B10" ~kernel_id:"B9" ~label:"characterization (B10/B9)" slow

let b11 ctx =
  let i = get ctx in
  ignore
    (bench ctx ~id:"B11"
       ~name:(Printf.sprintf "B11 fictitious 100r, kernel (%s)" i.ktag)
       (fun () ->
         ignore (Sim.Fictitious.run (Prng.Rng.create 777) i.kmodel ~rounds:100)))

let b12 ctx =
  let i = get ctx in
  let slow =
    bench ctx ~id:"B12"
      ~name:(Printf.sprintf "B12 fictitious 100r, naive (%s)" i.ktag)
      (fun () ->
        ignore
          (Sim.Fictitious.run ~naive:true (Prng.Rng.create 777) i.kmodel
             ~rounds:100))
  in
  speedup ctx ~id:"B12" ~kernel_id:"B11"
    ~label:"fictitious 100 rounds (B12/B11)" slow

(* --- B13: numeric-tower fast path vs the seed's fixed-width rationals --- *)

(* A faithful in-process copy of the pre-tower fixed-width arithmetic
   (normalized 63-bit fractions, overflow-checked primitives, Knuth's
   shared-gcd tricks), so the tower's small-path overhead is measured
   against the exact code it replaced rather than against a remembered
   number.  Kept local to the benchmark on purpose: nothing else may
   depend on overflow-raising arithmetic anymore. *)
module Fixed = struct
  exception Overflow

  type t = { num : int; den : int }

  let check_representable n = if n = min_int then raise Overflow else n

  let add_ovf a b =
    let s = a + b in
    if (a >= 0) = (b >= 0) && (s >= 0) <> (a >= 0) then raise Overflow
    else check_representable s

  let mul_ovf a b =
    if a = 0 || b = 0 then 0
    else
      let p = a * b in
      if p / a <> b then raise Overflow else check_representable p

  let neg_ovf a = if a = min_int then raise Overflow else -a
  let rec gcd a b = if b = 0 then a else gcd b (a mod b)

  let norm num den =
    if den = 0 then invalid_arg "Fixed: zero denominator";
    let num, den = if den < 0 then (neg_ovf num, neg_ovf den) else (num, den) in
    if num = 0 then { num = 0; den = 1 }
    else
      let g = gcd (abs num) den in
      { num = num / g; den = den / g }

  let make num den = norm (check_representable num) (check_representable den)
  let zero = { num = 0; den = 1 }
  let one = { num = 1; den = 1 }

  let add a b =
    let g = gcd a.den b.den in
    let da = a.den / g and db = b.den / g in
    let n = add_ovf (mul_ovf a.num db) (mul_ovf b.num da) in
    norm n (mul_ovf a.den db)

  let mul a b =
    let g1 = gcd (abs a.num) b.den and g2 = gcd (abs b.num) a.den in
    let n = mul_ovf (a.num / g1) (b.num / g2) in
    let d = mul_ovf (a.den / g2) (b.den / g1) in
    norm n d

  let sub a b = add a { num = -b.num; den = b.den }

  let compare a b =
    if a.den = b.den then Stdlib.compare a.num b.num
    else
      let g = gcd a.den b.den in
      let da = a.den / g and db = b.den / g in
      Stdlib.compare (mul_ovf a.num db) (mul_ovf b.num da)
end

(* The kernel-shaped op mix: a dot product of probability-sized fractions
   (denominators dividing 24, like the tables' lcm-bounded entries)
   followed by a compare and a subtract.  Denominators never leave the
   small range, so this times the tower's fast path exclusively. *)
let b13_size = 64
let b13_dens = [| 2; 3; 4; 6; 8; 12; 24; 1 |]
let b13_num i j = ((i * 37) + (j * 53)) mod 7 [@@inline]

let b13_mix_q xs ys =
  let acc = ref Q.zero in
  for i = 0 to Array.length xs - 1 do
    acc := Q.add !acc (Q.mul xs.(i) ys.(i))
  done;
  if Q.compare !acc Q.one > 0 then Q.sub !acc Q.one else !acc

let b13_mix_fixed xs ys =
  let acc = ref Fixed.zero in
  for i = 0 to Array.length xs - 1 do
    acc := Fixed.add !acc (Fixed.mul xs.(i) ys.(i))
  done;
  if Fixed.compare !acc Fixed.one > 0 then Fixed.sub !acc Fixed.one else !acc

(* Ten primes near 10^5: the running sum of reciprocals promotes once the
   denominator product clears max_int (after the fourth term) and stays
   big, so this times promotion plus big-path arithmetic. *)
let b13_primes =
  [| 99991; 99989; 99971; 99961; 99929; 99923; 99907; 99901; 99881; 99877 |]

let b13_promoting_sum () =
  Array.fold_left (fun acc p -> Q.add acc (Q.make 1 p)) Q.zero b13_primes

(* The committed full-scale artifact, for the cross-run regression gate.
   Resolved relative to the working directory, which is the project root
   under both `dune exec bench/main.exe` and the CLI. *)
let committed_baseline = "BENCH_2.json"

let baseline_b7_ns () =
  if not (Sys.file_exists committed_baseline) then None
  else
    let ic = open_in committed_baseline in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Harness.Json.of_string text with
    | Error _ -> None
    | Ok json -> (
        match Harness.Json.member "experiments" json with
        | Some (Harness.Json.List exps) ->
            List.find_map
              (fun e ->
                match Harness.Json.member "id" e with
                | Some (Harness.Json.String "B7") -> (
                    match Harness.Json.member "measures" e with
                    | Some m -> (
                        match Harness.Json.member "ns_per_run" m with
                        | Some (Harness.Json.Float ns) -> Some ns
                        | Some (Harness.Json.Int ns) -> Some (float_of_int ns)
                        | _ -> None)
                    | None -> None)
                | _ -> None)
              exps
        | _ -> None)

let b13 ctx =
  let quota = if E.is_smoke ctx then 0.02 else 0.5 in
  let raw ~name thunk =
    match analyze ~quota [ Test.make ~name (Staged.stage thunk) ] with
    | (_, e, _) :: _ -> e
    | [] -> nan
  in
  let solo ~name ~measure thunk =
    let estimate = raw ~name thunk in
    E.measure ctx measure (E.Float estimate);
    ignore
      (E.check ctx
         ~label:("B13 " ^ measure ^ ": OLS estimate is positive and finite")
         (Float.is_finite estimate && estimate > 0.0));
    estimate
  in
  let qx = Array.init b13_size (fun i -> Q.make (b13_num i 1 - 3) b13_dens.(i mod 8)) in
  let qy = Array.init b13_size (fun i -> Q.make (b13_num i 2 - 3) b13_dens.((i + 3) mod 8)) in
  let fx = Array.init b13_size (fun i -> Fixed.make (b13_num i 1 - 3) b13_dens.(i mod 8)) in
  let fy = Array.init b13_size (fun i -> Fixed.make (b13_num i 2 - 3) b13_dens.((i + 3) mod 8)) in
  (* Same mix, same answer: the baseline must agree exactly before its
     timing means anything. *)
  let fr = b13_mix_fixed fx fy in
  ignore
    (E.check ctx ~label:"B13: tower mix = fixed-width mix (exact)"
       (Q.equal (b13_mix_q qx qy) (Q.make fr.Fixed.num fr.Fixed.den)));
  ignore
    (E.check ctx ~label:"B13: mix result stays on the small path"
       (Q.is_small (b13_mix_q qx qy)));
  ignore
    (E.check ctx ~label:"B13: prime-harmonic sum promotes"
       (not (Q.is_small (b13_promoting_sum ()))));
  (* The overhead gate needs the pair measured under identical machine
     conditions: interleave the two estimates and keep the per-side
     minimum over a few rounds, which is robust against load spikes that
     a single OLS pass absorbs into its estimate. *)
  let rounds = if E.is_smoke ctx then 1 else 3 in
  let tower = ref infinity and fixed = ref infinity in
  for _ = 1 to rounds do
    tower :=
      Float.min !tower
        (raw
           ~name:(Printf.sprintf "B13 tower small path (%d-term dot mix)" b13_size)
           (fun () -> ignore (b13_mix_q qx qy)));
    fixed :=
      Float.min !fixed
        (raw ~name:"B13 fixed-width baseline (same mix)" (fun () ->
             ignore (b13_mix_fixed fx fy)))
  done;
  let tower = !tower and fixed = !fixed in
  E.measure ctx "tower_ns_per_run" (E.Float tower);
  E.measure ctx "fixed_ns_per_run" (E.Float fixed);
  ignore
    (E.check ctx ~label:"B13 pair estimates: positive and finite"
       (Float.is_finite tower && tower > 0.0 && Float.is_finite fixed
      && fixed > 0.0));
  let promo =
    solo ~name:"B13 promoting prime-harmonic sum (10 terms)"
      ~measure:"promotion_ns_per_run"
      (fun () -> ignore (b13_promoting_sum ()))
  in
  let overhead = tower /. fixed in
  E.measure ctx "small_path_overhead" (E.Float overhead);
  E.outf ctx
    "B13 small-path overhead vs fixed-width seed arithmetic: %.3fx (%s vs %s)\n"
    overhead (human_time tower) (human_time fixed);
  E.outf ctx "B13 promoting 10-term sum: %s (%.1f ns/term incl. big path)\n"
    (human_time promo)
    (promo /. float_of_int (Array.length b13_primes));
  if not (E.is_smoke ctx) then
    ignore
      (E.check ctx ~label:"B13: small-path overhead at most 10%"
         (overhead <= 1.10));
  (* Cross-run report: the BR sweep (B7) of this sweep against the
     committed full-scale artifact.  Informational only — cross-session
     wall clock on shared hardware swings far more than the in-process
     pair above, which is the authoritative overhead measurement. *)
  (match (E.is_smoke ctx, Hashtbl.find_opt estimates "B7", baseline_b7_ns ()) with
  | false, Some current, Some committed when committed > 0.0 ->
      let ratio = current /. committed in
      E.measure ctx "b7_vs_committed_baseline" (E.Float ratio);
      E.outf ctx "B13 B7 BR sweep vs committed %s: %.3fx (%s vs %s)\n"
        committed_baseline ratio (human_time current) (human_time committed)
  | _ ->
      E.outf ctx
        "B13 committed-baseline comparison: n/a (needs full scale, B7 in \
         the same sweep, and %s)\n"
        committed_baseline);
  E.out ctx "\n"

(* --- B14: the parallel runner reproduces the sequential artifact --- *)

(* A fixed, cheap, cross-independent selection: no B-series ids (their
   speedup pairs share an in-process estimates table that forked workers
   cannot see), always at Smoke scale so the gate costs the same from a
   full sweep as from a smoke one. *)
let b14_ids = [ "T1"; "T2"; "T4"; "F1" ]

let b14 ctx =
  let module R = Harness.Registry in
  match R.select ~only:b14_ids with
  | Error e -> ignore (E.check ctx ~label:("B14: selection failed: " ^ e) false)
  | Ok exps ->
      (* Force counter recording for the inner sweeps whatever the
         ambient level: every inner result then carries a metrics
         object, so the byte-equality check below also proves the
         deterministic counters identical between the sequential run
         and the 4 forked workers — the Obs determinism contract,
         gated rather than asserted. *)
      let module Obs = Harness.Obs in
      let ambient = Obs.level () in
      Fun.protect ~finally:(fun () -> Obs.set_level ambient) @@ fun () ->
      Obs.set_level Obs.Counters;
      let seq_results, seq_wall =
        Harness.Timer.time (fun () -> R.run ~scale:E.Smoke exps)
      in
      let par_results, par_wall =
        Harness.Timer.time (fun () -> R.run_parallel ~scale:E.Smoke ~jobs:4 exps)
      in
      let stripped results =
        Harness.Json.to_string ~pretty:true
          (R.strip_timings (R.report_json ~scale:E.Smoke results))
      in
      ignore
        (E.check ctx ~label:"B14: no crashed verdict in the 4-worker sweep"
           (List.for_all
              (fun (r : E.result) -> r.E.verdict <> E.Crashed)
              par_results));
      (* Guard against the counter half of the gate passing vacuously. *)
      ignore
        (E.check ctx
           ~label:"B14: inner results carry metrics, counters recorded"
           (List.for_all
              (fun (r : E.result) -> r.E.metrics <> None)
              (seq_results @ par_results)
           && List.exists
                (fun (r : E.result) ->
                  match r.E.metrics with
                  | Some m -> m.E.m_counters <> []
                  | None -> false)
                par_results));
      ignore
        (E.check ctx
           ~label:
             "B14: 4-worker artifact byte-identical to sequential (timings \
              stripped)"
           (stripped par_results = stripped seq_results));
      let point w = { E.median = w; min = w; max = w; runs = 1 } in
      E.record_timing ctx "sequential_sweep" (point seq_wall);
      E.record_timing ctx "parallel_sweep_jobs4" (point par_wall);
      E.outf ctx
        "B14 %d-experiment smoke sweep: sequential %.3fs, 4 workers %.3fs \
         (%.2fx wall-clock)\n\n"
        (List.length exps) seq_wall par_wall
        (if par_wall > 0.0 then seq_wall /. par_wall else Float.nan)

(* --- B15: observability off is free --- *)

(* A faithful in-process copy of the B7 best-response sweep with the
   [Obs] instrumentation deleted — the same B13 trick of measuring
   against the exact code the change touched rather than a remembered
   number.  The copy reads the same kernel tables through the same
   [Profile] queries (uninstrumented array lookups), so the only
   difference from the library path is the absent counter code.  Kept
   local to the benchmark on purpose. *)
module B15_plain = struct
  open Netgraph

  let vp_best_value prof =
    let g = Defender.Model.graph (Defender.Profile.model prof) in
    let best_hit = ref (Defender.Profile.hit_prob prof 0) in
    for v = 1 to Graph.n g - 1 do
      let h = Defender.Profile.hit_prob prof v in
      if Q.( < ) h !best_hit then best_hit := h
    done;
    Q.sub Q.one !best_hit

  let tp_greedy_value prof =
    let model = Defender.Profile.model prof in
    let g = Defender.Model.graph model in
    let k = Defender.Model.k model in
    let chosen = Array.make (Graph.m g) false in
    let covered = Array.make (Graph.n g) false in
    let gain id =
      let e = Graph.edge g id in
      let value_of v =
        if covered.(v) then Q.zero else Defender.Profile.expected_load prof v
      in
      Q.add (value_of e.Graph.u) (value_of e.Graph.v)
    in
    let total = ref Q.zero in
    for _ = 1 to k do
      let best = ref None in
      for id = 0 to Graph.m g - 1 do
        if not chosen.(id) then
          let value = gain id in
          match !best with
          | Some (_, v) when Q.( >= ) v value -> ()
          | _ -> best := Some (id, value)
      done;
      match !best with
      | None -> ()
      | Some (id, value) ->
          chosen.(id) <- true;
          let e = Graph.edge g id in
          covered.(e.Graph.u) <- true;
          covered.(e.Graph.v) <- true;
          total := Q.add !total value
    done;
    !total

  let sweep prof =
    ignore (vp_best_value prof);
    ignore (tp_greedy_value prof)
end

let b15 ctx =
  let module Obs = Harness.Obs in
  let i = get ctx in
  let ambient = Obs.level () in
  Fun.protect ~finally:(fun () -> Obs.set_level ambient) @@ fun () ->
  (* The baseline only measures anything if it computes the same
     answers. *)
  ignore
    (E.check ctx ~label:"B15: uninstrumented copy = library sweep (exact)"
       (Q.equal
          (Defender.Best_response.vp_best_value i.kprof)
          (B15_plain.vp_best_value i.kprof)
       && Q.equal
            (Defender.Best_response.tp_greedy_value i.kprof)
            (B15_plain.tp_greedy_value i.kprof)));
  (* Fixed-iteration timing (not Bechamel): the on-measurement below
     records real counters, and a time-quota loop would record a
     machine-dependent count of them.  With fixed batch/repeat/rounds
     the recorded delta is a constant of the scale, keeping B15's own
     metrics deterministic under --jobs. *)
  let batch = if E.is_smoke ctx then 2 else 10 in
  let repeat = if E.is_smoke ctx then 3 else 7 in
  let rounds = if E.is_smoke ctx then 1 else 3 in
  let time_side f =
    let s =
      Harness.Timer.time_stats ~repeat (fun () ->
          for _ = 1 to batch do
            f ()
          done)
    in
    s.Harness.Timer.min /. float_of_int batch
  in
  let lib () = br_sweep i.kprof in
  let plain () = B15_plain.sweep i.kprof in
  (* Off vs baseline: interleaved min-of-rounds (B13 methodology), both
     sides under forced Off — this pair is the gate. *)
  let t_off = ref infinity and t_plain = ref infinity in
  Obs.unobserved (fun () ->
      for _ = 1 to rounds do
        t_off := Float.min !t_off (time_side lib);
        t_plain := Float.min !t_plain (time_side plain)
      done);
  let t_off = !t_off and t_plain = !t_plain in
  (* Counters on: informational cost of actually recording. *)
  Obs.set_level Obs.Counters;
  let t_on = ref infinity in
  for _ = 1 to rounds do
    t_on := Float.min !t_on (time_side lib)
  done;
  Obs.set_level ambient;
  let t_on = !t_on in
  E.measure ctx "off_ns_per_sweep" (E.Float (t_off *. 1e9));
  E.measure ctx "baseline_ns_per_sweep" (E.Float (t_plain *. 1e9));
  E.measure ctx "counters_on_ns_per_sweep" (E.Float (t_on *. 1e9));
  ignore
    (E.check ctx ~label:"B15 timings: positive and finite"
       (Float.is_finite t_off && t_off > 0.0 && Float.is_finite t_plain
      && t_plain > 0.0 && Float.is_finite t_on && t_on > 0.0));
  let off_overhead = t_off /. t_plain in
  let on_cost = t_on /. t_plain in
  E.measure ctx "off_overhead" (E.Float off_overhead);
  E.measure ctx "counters_on_cost" (E.Float on_cost);
  E.outf ctx
    "B15 BR sweep (%s): off %.3fx of uninstrumented (%s vs %s); counters on \
     %.3fx (informational)\n\n"
    i.ktag off_overhead
    (human_time (t_off *. 1e9))
    (human_time (t_plain *. 1e9))
    on_cost;
  if not (E.is_smoke ctx) then
    ignore
      (E.check ctx ~label:"B15: observability off costs at most 5%"
         (off_overhead <= 1.05))

(* --- B16: persistent pool dispatch overhead and faithfulness --- *)

(* Two halves.  (1) Dispatch overhead: the same batch of many tiny jobs
   through fork-per-job (Harness.Parallel) and through the persistent
   pool (Harness.Pool), 4 workers each.  The job body is near-free, so
   the wall clock is almost pure orchestration: fork+exit per job on one
   side, one frame round-trip on a warm worker on the other.  (2)
   Faithfulness: the B14 gate re-run through the pool dispatch path —
   a pooled registry sweep must reassemble the exact sequential
   artifact, deterministic counters included, even though the pool adds
   retry/respawn/steal machinery between the two. *)
let b16 ctx =
  let count = if E.is_smoke ctx then 24 else 96 in
  let rounds = if E.is_smoke ctx then 1 else 3 in
  let job i = Harness.Json.Int ((i * i) land 0xffff) in
  let all_completed outcomes =
    Array.for_all
      (function Harness.Parallel.Completed _ -> true | _ -> false)
      outcomes
  in
  let t_fork = ref infinity and t_pool = ref infinity in
  let ok = ref true in
  for _ = 1 to rounds do
    let fork_out, fork_wall =
      Harness.Timer.time (fun () -> Harness.Parallel.run ~jobs:4 count job)
    in
    let pool_out, pool_wall =
      Harness.Timer.time (fun () -> Harness.Pool.run ~jobs:4 count job)
    in
    ok := !ok && all_completed fork_out && all_completed pool_out
          && fork_out = pool_out;
    t_fork := Float.min !t_fork fork_wall;
    t_pool := Float.min !t_pool pool_wall
  done;
  let t_fork = !t_fork and t_pool = !t_pool in
  ignore
    (E.check ctx
       ~label:
         (Printf.sprintf
            "B16: all %d jobs completed with equal payloads on both engines"
            count)
       !ok);
  let per_job t = t /. float_of_int count *. 1e9 in
  E.measure ctx "fork_dispatch_ns_per_job" (E.Float (per_job t_fork));
  E.measure ctx "pool_dispatch_ns_per_job" (E.Float (per_job t_pool));
  let ratio = if t_fork > 0.0 then t_pool /. t_fork else Float.nan in
  E.measure ctx "pool_vs_fork_dispatch" (E.Float ratio);
  E.outf ctx
    "B16 dispatch of %d near-empty jobs on 4 workers: fork-per-job %s/job, \
     pool %s/job (pool at %.2fx of fork)\n"
    count
    (human_time (per_job t_fork))
    (human_time (per_job t_pool))
    ratio;
  (* The point of the pool is amortizing the fork: gate it.  Smoke stays
     informational (one round on loaded CI is noise), full scale demands
     the pool beat fork-per-job outright on min-of-3. *)
  if not (E.is_smoke ctx) then
    ignore
      (E.check ctx
         ~label:"B16: pool dispatch strictly cheaper than fork-per-job"
         (Float.is_finite ratio && ratio < 1.0));
  (* Faithfulness through the registry path (B14's gate, pool engine). *)
  let module R = Harness.Registry in
  match R.select ~only:b14_ids with
  | Error e -> ignore (E.check ctx ~label:("B16: selection failed: " ^ e) false)
  | Ok exps ->
      let module Obs = Harness.Obs in
      let ambient = Obs.level () in
      Fun.protect ~finally:(fun () -> Obs.set_level ambient) @@ fun () ->
      Obs.set_level Obs.Counters;
      let seq_results = R.run ~scale:E.Smoke exps in
      let pool_results, pool_wall =
        Harness.Timer.time (fun () ->
            R.run_parallel ~scale:E.Smoke ~jobs:4 ~dispatch:`Pool exps)
      in
      let stripped results =
        Harness.Json.to_string ~pretty:true
          (R.strip_timings (R.report_json ~scale:E.Smoke results))
      in
      ignore
        (E.check ctx ~label:"B16: no crashed verdict in the pooled sweep"
           (List.for_all
              (fun (r : E.result) -> r.E.verdict <> E.Crashed)
              pool_results));
      ignore
        (E.check ctx
           ~label:
             "B16: pooled artifact byte-identical to sequential (timings \
              stripped)"
           (stripped pool_results = stripped seq_results));
      let point w = { E.median = w; min = w; max = w; runs = 1 } in
      E.record_timing ctx "pool_sweep_jobs4" (point pool_wall);
      E.outf ctx
        "B16 %d-experiment smoke sweep on the 4-worker pool: %.3fs\n\n"
        (List.length exps) pool_wall

(* --- B17: CSR substrate vs the seed adjacency representation --- *)

(* The pre-CSR [Graph.t], verbatim from the seed: boxed edge records,
   one heap-allocated (neighbour, edge id) tuple row per vertex, a
   tuple-keyed Hashtbl duplicate check and a polymorphic [Array.sort
   compare] per row — plus the seed's recursive Hopcroft-Karp ported
   onto it.  Construction, a full neighbour sweep and a maximum
   matching run against the CSR library path on identical inputs; the
   per-edge ratios gate the substrate swap (B13/B15 methodology:
   measure against the exact code the change replaced, in process). *)
module B17_seed = struct
  type edge = { u : int; v : int }
  type t = { n : int; edges : edge array; adj : (int * int) array array }

  let normalize u v = if u < v then { u; v } else { u = v; v = u }

  let make ~n edge_list =
    let seen = Hashtbl.create (List.length edge_list) in
    let check (u, v) =
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "B17_seed.make: endpoint out of range";
      if u = v then invalid_arg "B17_seed.make: self-loop";
      let e = normalize u v in
      if Hashtbl.mem seen (e.u, e.v) then
        invalid_arg "B17_seed.make: duplicate edge";
      Hashtbl.add seen (e.u, e.v) ();
      e
    in
    let edges = Array.of_list (List.map check edge_list) in
    let deg = Array.make n 0 in
    Array.iter
      (fun e ->
        deg.(e.u) <- deg.(e.u) + 1;
        deg.(e.v) <- deg.(e.v) + 1)
      edges;
    let adj = Array.init n (fun v -> Array.make deg.(v) (0, 0)) in
    let fill = Array.make n 0 in
    Array.iteri
      (fun id e ->
        adj.(e.u).(fill.(e.u)) <- (e.v, id);
        fill.(e.u) <- fill.(e.u) + 1;
        adj.(e.v).(fill.(e.v)) <- (e.u, id);
        fill.(e.v) <- fill.(e.v) + 1)
      edges;
    Array.iter (fun row -> Array.sort compare row) adj;
    { n; edges; adj }

  (* Checksum sweep through the seed's public traversal idiom: the old
     [Graph.neighbors] copied each row with [Array.map fst] and callers
     iterated the copy — the allocation per vertex is part of what the
     CSR side's [iter_neighbors] replaces, so it belongs in the
     baseline. *)
  let neighbors g v = Array.map fst g.adj.(v)

  let neighbor_sweep g =
    let acc = ref 0 in
    for v = 0 to g.n - 1 do
      Array.iter (fun w -> acc := !acc + w) (neighbors g v)
    done;
    !acc

  (* The seed's Hopcroft-Karp, recursive DFS and Queue-based BFS, with
     the crossing adjacency drawn straight from the tuple rows. *)
  let hk_size g ~left ~right =
    let side = Array.make g.n 0 in
    List.iter (fun v -> side.(v) <- 1) left;
    List.iter (fun v -> side.(v) <- 2) right;
    let lefts = Array.of_list left in
    let nl = Array.length lefts in
    let adj =
      Array.map
        (fun v ->
          Array.to_list g.adj.(v)
          |> List.filter_map (fun (w, id) ->
                 if side.(w) = 2 then Some (w, id) else None)
          |> Array.of_list)
        lefts
    in
    let inf = max_int in
    let mate = Array.make g.n (-1) in
    let dist = Array.make nl inf in
    let queue = Queue.create () in
    let left_index = Array.make g.n (-1) in
    Array.iteri (fun i v -> left_index.(v) <- i) lefts;
    let bfs () =
      Queue.clear queue;
      let reachable_free = ref false in
      Array.iteri
        (fun i v ->
          if mate.(v) < 0 then begin
            dist.(i) <- 0;
            Queue.add i queue
          end
          else dist.(i) <- inf)
        lefts;
      while not (Queue.is_empty queue) do
        let i = Queue.pop queue in
        Array.iter
          (fun (w, _) ->
            match mate.(w) with
            | -1 -> reachable_free := true
            | partner ->
                let j = left_index.(partner) in
                if dist.(j) = inf then begin
                  dist.(j) <- dist.(i) + 1;
                  Queue.add j queue
                end)
          adj.(i)
      done;
      !reachable_free
    in
    let rec dfs i =
      let found = ref false in
      let row = adj.(i) in
      let k = ref 0 in
      while (not !found) && !k < Array.length row do
        let w, _ = row.(!k) in
        incr k;
        let extendable =
          match mate.(w) with
          | -1 -> true
          | partner ->
              let j = left_index.(partner) in
              dist.(j) = dist.(i) + 1 && dfs j
        in
        if extendable then begin
          mate.(w) <- lefts.(i);
          mate.(lefts.(i)) <- w;
          found := true
        end
      done;
      if not !found then dist.(i) <- inf;
      !found
    in
    let size = ref 0 in
    while bfs () do
      Array.iteri
        (fun i v -> if mate.(v) < 0 && dfs i then incr size)
        lefts
    done;
    !size
end

let b17 ctx =
  let module Obs = Harness.Obs in
  let module Graph = Netgraph.Graph in
  let smoke = E.is_smoke ctx in
  (* Preferential attachment for construction/traversal (skewed degrees
     stress both the row sort and the prefix-sum fill), sparse d-out
     bipartite for the matching pair. *)
  let n_pa = if smoke then 16_384 else 131_072 in
  let ab = if smoke then 4_096 else 65_536 in
  let d = 3 in
  let pa, bip, pa_pairs, bip_pairs, left, right =
    Obs.unobserved (fun () ->
        let rng = Prng.Rng.create 170_017 in
        let pa = Netgraph.Gen.preferential_attachment rng ~n:n_pa ~c:2 in
        let bip = Netgraph.Gen.random_bipartite_sparse rng ~a:ab ~b:ab ~d in
        let pairs g =
          List.rev
            (Graph.fold_edges g ~init:[] ~f:(fun acc _ e ->
                 (e.Graph.u, e.Graph.v) :: acc))
        in
        let left = List.init ab (fun i -> i) in
        let right = List.init ab (fun i -> ab + i) in
        (pa, bip, pairs pa, pairs bip, left, right))
  in
  let m_pa = Graph.m pa and m_bip = Graph.m bip in
  E.measure ctx "pa_n" (E.Int n_pa);
  E.measure ctx "pa_m" (E.Int m_pa);
  E.measure ctx "bip_n" (E.Int (2 * ab));
  E.measure ctx "bip_m" (E.Int m_bip);
  (* Correctness first: the baseline only measures anything if both
     representations agree on the same inputs. *)
  let seed_pa = Obs.unobserved (fun () -> B17_seed.make ~n:n_pa pa_pairs) in
  let seed_bip =
    Obs.unobserved (fun () -> B17_seed.make ~n:(2 * ab) bip_pairs)
  in
  let csr_sweep g =
    let acc = ref 0 in
    for v = 0 to Graph.n g - 1 do
      Graph.iter_neighbors g v ~f:(fun w -> acc := !acc + w)
    done;
    !acc
  in
  ignore
    (E.check ctx ~label:"B17: CSR and seed traversal checksums agree"
       (csr_sweep pa = B17_seed.neighbor_sweep seed_pa
       && csr_sweep bip = B17_seed.neighbor_sweep seed_bip));
  let csr_size =
    (Matching.Hopcroft_karp.max_matching bip ~left ~right).Matching.Hopcroft_karp.size
  in
  let seed_size =
    Obs.unobserved (fun () -> B17_seed.hk_size seed_bip ~left ~right)
  in
  E.measure ctx "bip_matching_size" (E.Int csr_size);
  ignore
    (E.check ctx ~label:"B17: CSR and seed matching sizes agree"
       (csr_size = seed_size));
  (* Fixed-iteration interleaved min-of-rounds (B15 methodology); all
     timing under [Obs.unobserved] so HK's counters stay a pure function
     of the single correctness run above. *)
  let repeat = if smoke then 2 else 3 in
  let rounds = if smoke then 1 else 3 in
  let time_side ~batch f =
    let s =
      Harness.Timer.time_stats ~repeat (fun () ->
          for _ = 1 to batch do
            f ()
          done)
    in
    s.Harness.Timer.min /. float_of_int batch
  in
  let pair ~batch csr seed =
    let t_csr = ref infinity and t_seed = ref infinity in
    Obs.unobserved (fun () ->
        for _ = 1 to rounds do
          t_csr := Float.min !t_csr (time_side ~batch csr);
          t_seed := Float.min !t_seed (time_side ~batch seed)
        done);
    (!t_csr, !t_seed)
  in
  let build_csr, build_seed =
    pair ~batch:1
      (fun () -> ignore (Graph.make ~n:n_pa pa_pairs))
      (fun () -> ignore (B17_seed.make ~n:n_pa pa_pairs))
  in
  let trav_batch = if smoke then 8 else 4 in
  let trav_csr, trav_seed =
    pair ~batch:trav_batch
      (fun () -> ignore (csr_sweep pa))
      (fun () -> ignore (B17_seed.neighbor_sweep seed_pa))
  in
  let match_csr, match_seed =
    pair ~batch:1
      (fun () -> ignore (Matching.Hopcroft_karp.max_matching bip ~left ~right))
      (fun () -> ignore (B17_seed.hk_size seed_bip ~left ~right))
  in
  let per_edge m t = t /. float_of_int m *. 1e9 in
  let report name m csr seed =
    E.measure ctx (name ^ "_csr_ns_per_edge") (E.Float (per_edge m csr));
    E.measure ctx (name ^ "_seed_ns_per_edge") (E.Float (per_edge m seed));
    let ratio = if seed > 0.0 then csr /. seed else Float.nan in
    E.measure ctx (name ^ "_csr_vs_seed") (E.Float ratio);
    E.outf ctx "B17 %-12s %s/edge CSR, %s/edge seed (CSR at %.2fx)\n" name
      (human_time (per_edge m csr))
      (human_time (per_edge m seed))
      ratio;
    ratio
  in
  E.outf ctx "B17 substrate (PA n=%d m=%d; bipartite n=%d m=%d):\n" n_pa m_pa
    (2 * ab) m_bip;
  let r_build = report "construction" m_pa build_csr build_seed in
  let r_trav = report "traversal" m_pa trav_csr trav_seed in
  let r_match = report "matching" m_bip match_csr match_seed in
  E.outf ctx "\n";
  ignore
    (E.check ctx ~label:"B17 timings: positive and finite"
       (List.for_all
          (fun t -> Float.is_finite t && t > 0.0)
          [ build_csr; build_seed; trav_csr; trav_seed; match_csr; match_seed ]));
  (* Full scale gates the swap: CSR construction must beat the
     Hashtbl-and-sort path outright; traversal and matching must at
     least hold the line (small tolerance for run-to-run noise). *)
  if not smoke then begin
    ignore
      (E.check ctx ~label:"B17: CSR construction cheaper than seed (< 1.0x)"
         (Float.is_finite r_build && r_build < 1.0));
    ignore
      (E.check ctx ~label:"B17: CSR traversal within 1.05x of seed"
         (Float.is_finite r_trav && r_trav <= 1.05));
    ignore
      (E.check ctx ~label:"B17: CSR matching within 1.10x of seed"
         (Float.is_finite r_match && r_match <= 1.10))
  end

(* --- B18: the query daemon's canonical-instance solve cache --- *)

(* A daemon is forked around the real defender service on a private
   Unix socket; the same solve request is sent cold (worker computes)
   and warm (answered from the LRU under the canonical key).  The whole
   point of the cache is that the warm path skips the solver, so at
   full scale the min-of-N warm round trip is gated well below the cold
   one.  Smoke runs the same session but keeps the timing informational
   (one round trip on loaded CI is noise); the protocol facts — hit
   flag, byte-identical payload, counters — are checked at both
   scales. *)
let b18 ctx =
  let smoke = E.is_smoke ctx in
  let module J = Harness.Json in
  let module D = Harness.Daemon in
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "defender_b18_%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  (* Full scale queries the B7 acceptance instance (grid 10x12): its
     n = 120 sits above the canonical labeling's exact-search bound, so
     the per-request key is the cheap refinement path while the solve
     itself is substantial — the regime the cache exists for. *)
  let g = if smoke then Netgraph.Gen.grid 3 4 else Netgraph.Gen.grid 10 12 in
  let k = if smoke then 2 else 5 in
  let nu = if smoke then 3 else 6 in
  let request =
    J.Obj
      [
        ("id", J.Int 0);
        ("op", J.String "solve");
        ("graph6", J.String (Netgraph.Graph6.encode g));
        ("k", J.Int k);
        ("nu", J.Int nu);
      ]
  in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      (try
         ignore
           (Service.Daemon_service.serve ~address:(D.Unix_socket path)
              ~workers:1 ())
       with _ -> Unix._exit 2);
      Unix._exit 0
  | daemon ->
      Fun.protect ~finally:(fun () ->
          (try Unix.kill daemon Sys.sigkill with Unix.Unix_error _ -> ());
          ignore (Harness.Wire.waitpid_retry daemon);
          try Unix.unlink path with Unix.Unix_error _ -> ())
      @@ fun () ->
      let conn = D.Client.connect ~retries:100 (D.Unix_socket path) in
      Fun.protect ~finally:(fun () -> D.Client.close conn) @@ fun () ->
      let ask () =
        match D.Client.request conn request with
        | Ok r -> r
        | Error e -> failwith ("B18 request failed: " ^ e)
      in
      let cold, t_cold = Harness.Timer.time ask in
      let warm_rounds = if smoke then 3 else 10 in
      let t_warm = ref infinity in
      let warm = ref cold in
      for _ = 1 to warm_rounds do
        let r, t = Harness.Timer.time ask in
        warm := r;
        t_warm := Float.min !t_warm t
      done;
      let warm = !warm and t_warm = !t_warm in
      let get name j = J.member name j in
      ignore
        (E.check ctx ~label:"B18: cold solve ok, not served from cache"
           (get "ok" cold = Some (J.Bool true)
           && get "cached" cold = Some (J.Bool false)));
      ignore
        (E.check ctx ~label:"B18: warm re-query is a cache hit"
           (get "cached" warm = Some (J.Bool true)));
      ignore
        (E.check ctx ~label:"B18: cached result byte-identical to cold"
           (match (get "result" cold, get "result" warm) with
           | Some a, Some b -> J.to_string a = J.to_string b
           | _ -> false));
      ignore
        (E.check ctx ~label:"B18: daemon.cache_hits counted every warm round"
           (match get "metrics" warm with
           | Some m -> J.member "daemon.cache_hits" m = Some (J.Int warm_rounds)
           | None -> false));
      E.measure ctx "cold_solve_ns" (E.Float (t_cold *. 1e9));
      E.measure ctx "warm_hit_ns" (E.Float (t_warm *. 1e9));
      let ratio = if t_cold > 0.0 then t_warm /. t_cold else Float.nan in
      E.measure ctx "warm_vs_cold" (E.Float ratio);
      E.outf ctx
        "B18 daemon solve round trip (grid, k=%d): cold %s, warm cache hit \
         %s (%.3fx of cold, min of %d)\n"
        k (human_time (t_cold *. 1e9))
        (human_time (t_warm *. 1e9))
        ratio warm_rounds;
      if not smoke then
        ignore
          (E.check ctx
             ~label:"B18: warm hit at most a third of the cold solve"
             (Float.is_finite ratio && ratio < 0.34))

let register () =
  let r ~id ~claim ~expected run =
    Harness.Registry.register
      {
        Harness.Experiment.id;
        tag = Harness.Experiment.Micro;
        claim;
        expected;
        game = "tuple";
        run;
      }
  in
  r ~id:"B0"
    ~claim:
      "Payoff_kernel incremental tables are exactly the naive \
       support-rescanning oracle"
    ~expected:
      "hit_prob / expected_load / edge loads equal after a_tuple, a 6-step \
       replace_vp chain and a replace_tp collapse; fictitious play bit-for-bit"
    b0;
  r ~id:"B1" ~claim:"Hopcroft-Karp maximum bipartite matching"
    ~expected:"OLS ns/run on a sparse random bipartite graph" b1;
  r ~id:"B2" ~claim:"Blossom maximum matching (general graphs)"
    ~expected:"OLS ns/run on a sparse connected G(n,p)" b2;
  r ~id:"B3" ~claim:"minimum edge cover via Gallai" ~expected:"OLS ns/run" b3;
  r ~id:"B4" ~claim:"A_tuple NE construction (Thm 4.13 path)"
    ~expected:"OLS ns/run on the grid instance" b4;
  r ~id:"B5" ~claim:"Theorem 4.5 reduction lift" ~expected:"OLS ns/run" b5;
  r ~id:"B6" ~claim:"simulator throughput, 100 rounds" ~expected:"OLS ns/run" b6;
  r ~id:"B7" ~claim:"best-response sweep on the incremental kernel"
    ~expected:"OLS ns/run (pair with B8)" b7;
  r ~id:"B8" ~claim:"best-response sweep on the naive oracle"
    ~expected:"kernel speedup >= 2x at full scale" b8;
  r ~id:"B9" ~claim:"Thm 3.4 characterization check on the incremental kernel"
    ~expected:"OLS ns/run (pair with B10)" b9;
  r ~id:"B10" ~claim:"Thm 3.4 characterization check on the naive oracle"
    ~expected:"kernel speedup >= 2x at full scale" b10;
  r ~id:"B11" ~claim:"fictitious play, 100 rounds, incremental kernel"
    ~expected:"OLS ns/run (pair with B12)" b11;
  r ~id:"B12" ~claim:"fictitious play, 100 rounds, naive rescanning"
    ~expected:"kernel speedup >= 2x at full scale" b12;
  r ~id:"B13"
    ~claim:
      "numeric tower: the small fast path costs within 10% of the seed's \
       fixed-width rationals; promotion to big rationals is pay-as-you-go"
    ~expected:
      "tower/fixed overhead <= 1.10 at full scale; B7 within 10% of the \
       committed artifact; promoting sum completes exactly"
    b13;
  r ~id:"B14"
    ~claim:
      "the fork-based parallel runner (Harness.Parallel) is faithful: a \
       --jobs 4 sweep reassembles the exact sequential artifact, \
       deterministic Obs counters included"
    ~expected:
      "timing-stripped artifacts (with counter metrics) byte-identical, no \
       crashed verdicts; wall-clock speedup reported"
    b14;
  r ~id:"B15"
    ~claim:
      "observability (Harness.Obs) is free when off: the instrumented BR \
       sweep costs within 5% of an uninstrumented in-process copy"
    ~expected:
      "off/baseline <= 1.05 at full scale (min-of-3 interleaved, fixed \
       iterations); counters-on cost reported informationally"
    b15;
  r ~id:"B16"
    ~claim:
      "the persistent worker pool (Harness.Pool) amortizes the fork: \
       dispatching many near-empty jobs costs less than fork-per-job, and a \
       pooled sweep reassembles the exact sequential artifact"
    ~expected:
      "pool/fork dispatch ratio < 1.0 at full scale (min-of-3); \
       timing-stripped pooled artifact byte-identical to sequential, no \
       crashed verdicts"
    b16;
  r ~id:"B17"
    ~claim:
      "the CSR graph substrate is at least as fast per edge as the seed's \
       boxed tuple-row representation for construction, traversal and \
       maximum matching"
    ~expected:
      "construction < 1.0x, traversal <= 1.05x, matching <= 1.10x of the \
       in-process seed copy at full scale (min-of-3 interleaved, fixed \
       iterations); checksums and matching sizes equal at both scales"
    b17;
  r ~id:"B18"
    ~claim:
      "the query daemon's canonical-instance solve cache answers a repeated \
       solve without re-running the solver: a warm round trip is a cache \
       hit with a byte-identical payload"
    ~expected:
      "cached:true with identical result bytes and exact hit counters at \
       both scales; warm/cold latency < 0.34 at full scale (min of 10)"
    b18
