(* B1-B12: Bechamel microbenchmarks of the computational kernels.  Results
   are printed as a plain table (ns/run from the OLS estimate against the
   monotonic clock), keeping the output diffable.

   B7-B12 pair the Payoff_kernel query path against the naive
   support-rescanning oracle (~naive:true) on the acceptance instance
   (grid 10x12, n = 120, k = 5, nu = 6); a speedup table pairs the OLS
   estimates.  [smoke] runs the same pairs at reduced size plus exact
   kernel = naive equality assertions, exiting nonzero on any mismatch —
   it is wired into [dune runtest] so kernel regressions fail the suite. *)

open Bechamel
open Toolkit
module Q = Exact.Q

let make_tests () =
  let rng = Prng.Rng.create 12321 in
  let bip = Netgraph.Gen.random_bipartite rng ~a:100 ~b:120 ~p:0.05 in
  let gnp = Netgraph.Gen.gnp_connected rng ~n:120 ~p:0.06 in
  let grid = Netgraph.Gen.grid 8 10 in
  let grid_model = Defender.Model.make ~graph:grid ~nu:6 ~k:5 in
  let grid_partition =
    match Defender.Matching_nash.find_partition grid with
    | Some p -> p
    | None -> failwith "grid partition"
  in
  let edge_prof =
    match
      Defender.Matching_nash.solve
        (Defender.Model.make ~graph:grid ~nu:6 ~k:1)
        grid_partition
    with
    | Ok p -> p
    | Error e -> failwith e
  in
  let ne_prof =
    match Defender.Tuple_nash.a_tuple grid_model grid_partition with
    | Ok p -> p
    | Error e -> failwith e
  in
  let sim_rng = Prng.Rng.create 777 in
  [
    Test.make ~name:"B1 hopcroft-karp (n=220 bipartite)"
      (Staged.stage (fun () ->
           ignore (Matching.Hopcroft_karp.max_matching_bipartite bip)));
    Test.make ~name:"B2 blossom (n=120 gnp)"
      (Staged.stage (fun () -> ignore (Matching.Blossom.max_matching gnp)));
    Test.make ~name:"B3 min edge cover (n=120 gnp)"
      (Staged.stage (fun () -> ignore (Matching.Edge_cover.minimum gnp)));
    Test.make ~name:"B4 A_tuple (grid 8x10, k=5)"
      (Staged.stage (fun () ->
           ignore (Defender.Tuple_nash.a_tuple grid_model grid_partition)));
    Test.make ~name:"B5 reduction lift k=5 (grid 8x10)"
      (Staged.stage (fun () ->
           ignore (Defender.Reduction.edge_to_tuple ~k:5 edge_prof)));
    Test.make ~name:"B6 simulator 100 rounds (grid 8x10)"
      (Staged.stage (fun () ->
           ignore (Sim.Engine.play sim_rng ne_prof ~rounds:100)));
  ]

(* --- kernel vs naive (B7-B12) --- *)

(* A matching NE on a grid, the standing configuration for the
   kernel-vs-naive pairs. *)
let kernel_instance ~rows ~cols ~nu ~k =
  let grid = Netgraph.Gen.grid rows cols in
  let model = Defender.Model.make ~graph:grid ~nu ~k in
  let partition =
    match Defender.Matching_nash.find_partition grid with
    | Some p -> p
    | None -> failwith "grid partition"
  in
  let prof =
    match Defender.Tuple_nash.a_tuple model partition with
    | Ok p -> p
    | Error e -> failwith e
  in
  (model, prof)

(* One best-response sweep: the attacker scans every vertex's hit
   probability, the defender greedily scans every edge's load. *)
let br_sweep ?naive prof =
  ignore (Defender.Best_response.vp_best_value ?naive prof);
  ignore (Defender.Best_response.tp_greedy_value ?naive prof)

let make_kernel_tests ~tag ~model ~prof =
  let nm name = Printf.sprintf "%s (%s)" name tag in
  [
    Test.make ~name:(nm "B7 BR sweep, kernel")
      (Staged.stage (fun () -> br_sweep prof));
    Test.make ~name:(nm "B8 BR sweep, naive")
      (Staged.stage (fun () -> br_sweep ~naive:true prof));
    Test.make ~name:(nm "B9 characterization, kernel")
      (Staged.stage (fun () ->
           ignore (Defender.Characterization.check Defender.Verify.Certificate prof)));
    Test.make ~name:(nm "B10 characterization, naive")
      (Staged.stage (fun () ->
           ignore
             (Defender.Characterization.check ~naive:true
                Defender.Verify.Certificate prof)));
    Test.make ~name:(nm "B11 fictitious 100r, kernel")
      (Staged.stage (fun () ->
           ignore (Sim.Fictitious.run (Prng.Rng.create 777) model ~rounds:100)));
    Test.make ~name:(nm "B12 fictitious 100r, naive")
      (Staged.stage (fun () ->
           ignore
             (Sim.Fictitious.run ~naive:true (Prng.Rng.create 777) model
                ~rounds:100)));
  ]

let analyze ~quota tests =
  let grouped = Test.make_grouped ~name:"kernels" tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~stabilize:true () in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let estimate =
        match Analyze.OLS.estimates ols_result with
        | Some (t :: _) -> t
        | _ -> nan
      in
      let r2 = Option.value (Analyze.OLS.r_square ols_result) ~default:nan in
      rows := (name, estimate, r2) :: !rows)
    results;
  List.sort compare !rows

let human_time estimate =
  if estimate > 1e9 then Printf.sprintf "%.3f s" (estimate /. 1e9)
  else if estimate > 1e6 then Printf.sprintf "%.3f ms" (estimate /. 1e6)
  else if estimate > 1e3 then Printf.sprintf "%.3f us" (estimate /. 1e3)
  else Printf.sprintf "%.1f ns" estimate

let print_rows ~title rows =
  let table =
    Harness.Table.create ~title ~columns:[ "kernel"; "time/run"; "r^2" ]
  in
  List.iter
    (fun (name, estimate, r2) ->
      Harness.Table.add_row table
        [ name; human_time estimate; Printf.sprintf "%.4f" r2 ])
    rows;
  Harness.Table.print table;
  print_newline ()

let find_estimate rows tag =
  (* Bechamel prefixes grouped names; match on the "B7 " style tag. *)
  List.find_map
    (fun (name, estimate, _) ->
      let rec has i =
        i + String.length tag <= String.length name
        && (String.sub name i (String.length tag) = tag || has (i + 1))
      in
      if has 0 then Some estimate else None)
    rows

let print_speedups rows =
  let table =
    Harness.Table.create ~title:"kernel speedups (naive time / kernel time)"
      ~columns:[ "pair"; "kernel"; "naive"; "speedup" ]
  in
  List.iter
    (fun (label, fast_tag, slow_tag) ->
      match (find_estimate rows fast_tag, find_estimate rows slow_tag) with
      | Some fast, Some slow ->
          Harness.Table.add_row table
            [
              label;
              human_time fast;
              human_time slow;
              Printf.sprintf "%.1fx" (slow /. fast);
            ]
      | _ -> Harness.Table.add_row table [ label; "?"; "?"; "?" ])
    [
      ("BR sweep (B8/B7)", "B7 ", "B8 ");
      ("characterization (B10/B9)", "B9 ", "B10 ");
      ("fictitious 100 rounds (B12/B11)", "B11 ", "B12 ");
    ];
  Harness.Table.print table;
  print_newline ()

let run_all () =
  let model, prof = kernel_instance ~rows:10 ~cols:12 ~nu:6 ~k:5 in
  let tests =
    make_tests () @ make_kernel_tests ~tag:"grid 10x12, k=5" ~model ~prof
  in
  let rows = analyze ~quota:0.5 tests in
  print_rows ~title:"B1-B12: microbenchmarks (Bechamel OLS)" rows;
  print_speedups rows

(* --- smoke: reduced size + exact kernel = naive assertions --- *)

let smoke_failures = ref 0

let smoke_check label ok =
  if not ok then begin
    incr smoke_failures;
    Printf.eprintf "smoke FAIL: %s\n%!" label
  end

let assert_kernel_equals_naive ~label prof =
  let g = Defender.Model.graph (Defender.Profile.model prof) in
  let all_equal =
    Seq.for_all
      (fun v ->
        Q.equal (Defender.Profile.hit_prob prof v)
          (Defender.Profile.hit_prob ~naive:true prof v)
        && Q.equal
             (Defender.Profile.expected_load prof v)
             (Defender.Profile.expected_load ~naive:true prof v))
      (Seq.init (Netgraph.Graph.n g) Fun.id)
    && Seq.for_all
         (fun id ->
           Q.equal
             (Defender.Profile.expected_load_edge prof id)
             (Defender.Profile.expected_load_edge ~naive:true prof id))
         (Seq.init (Netgraph.Graph.m g) Fun.id)
  in
  smoke_check (label ^ ": kernel tables = naive oracle") all_equal

let smoke () =
  let model, prof = kernel_instance ~rows:4 ~cols:5 ~nu:3 ~k:2 in
  let g = Defender.Model.graph model in
  assert_kernel_equals_naive ~label:"a_tuple NE" prof;
  (* A chain of incremental deviations must stay exactly equal to the
     oracle (and to a from-scratch rebuild, checked transitively). *)
  let rng = Prng.Rng.create 31 in
  let deviated = ref prof in
  for step = 1 to 6 do
    let player = Prng.Rng.int rng (Defender.Model.nu model) in
    let size = 1 + Prng.Rng.int rng (Netgraph.Graph.n g) in
    let support =
      Array.to_list
        (Prng.Rng.sample_without_replacement rng ~count:size
           (Array.init (Netgraph.Graph.n g) Fun.id))
    in
    deviated :=
      Defender.Profile.replace_vp !deviated player (Dist.Finite.uniform support);
    assert_kernel_equals_naive
      ~label:(Printf.sprintf "replace_vp chain step %d" step)
      !deviated
  done;
  (match Defender.Profile.tp_support !deviated with
  | first :: _ ->
      deviated := Defender.Profile.replace_tp !deviated [ (first, Q.one) ];
      assert_kernel_equals_naive ~label:"replace_tp collapse" !deviated
  | [] -> smoke_check "non-empty tp support" false);
  (* Incremental and history-rescanning fictitious play are bit-for-bit
     identical on the same seed. *)
  let a = Sim.Fictitious.run (Prng.Rng.create 99) model ~rounds:40 in
  let b = Sim.Fictitious.run ~naive:true (Prng.Rng.create 99) model ~rounds:40 in
  smoke_check "fictitious naive = incremental (bit-for-bit)"
    (a.Sim.Fictitious.avg_gain = b.Sim.Fictitious.avg_gain
    && a.Sim.Fictitious.gain_series = b.Sim.Fictitious.gain_series
    && a.Sim.Fictitious.attack_frequency = b.Sim.Fictitious.attack_frequency
    && a.Sim.Fictitious.scan_frequency = b.Sim.Fictitious.scan_frequency);
  (* Reduced-size benchmark pass: exercises the Bechamel plumbing so the
     full micro target cannot bitrot silently. *)
  let rows =
    analyze ~quota:0.02
      (make_kernel_tests ~tag:"grid 4x5, k=2" ~model ~prof)
  in
  print_rows ~title:"smoke: kernel vs naive (reduced size)" rows;
  print_speedups rows;
  if !smoke_failures > 0 then begin
    Printf.eprintf "smoke: %d failure(s)\n%!" !smoke_failures;
    exit 1
  end;
  print_endline "smoke: all kernel = naive assertions passed."
