(* Experiment family S: the connected-subgraph defender (Akrida et al.,
   arXiv:1906.02774) driven through the same functorized engine as the
   tuple game.  S1 is the exact story: on cycles the uniform rotation
   of lambda-arcs is a verified mixed Nash equilibrium whose price of
   defense is exactly n/lambda, and on other Tier-1 families the greedy
   defender is gated against the top-lambda load certificate.  S2 is
   the dynamic story: fictitious play's tail-average defender gain
   converges to the equilibrium value nu*lambda/n on cycles. *)

open Netgraph
open Exp_util
module E = Harness.Experiment
module SG = Defender.Subgraph_game
module Engine = Defender.Subgraph_instance.Engine
module Q = Exact.Q

let all_strategies inst =
  List.rev (SG.fold_strategies inst ~init:[] ~f:(fun acc s -> s :: acc))

(* S1 — uniform rotation equilibrium and price of defense on cycles.
   The connected lambda-subsets of C_n (lambda < n) are exactly the n
   arcs, each vertex lies on lambda of them, so uniform-arcs vs
   uniform-vertices equalizes both sides: a mixed NE with defender gain
   nu*lambda/n and PoD = nu / gain = n/lambda. *)
let s1 ctx =
  let nu = 4 in
  let ns = if E.is_smoke ctx then [ 5; 6; 8 ] else [ 5; 6; 8; 10; 12; 16; 24 ] in
  let lambdas = [ 1; 2; 3 ] in
  let table =
    Harness.Table.create ~title:"S1: connected-subgraph defender on cycles"
      ~columns:[ "n"; "lambda"; "|Sigma_l|"; "NE"; "gain"; "PoD"; "n/lambda" ]
  in
  List.iter
    (fun n ->
      List.iter
        (fun lambda ->
          if lambda < n then begin
            let inst = SG.make ~graph:(Gen.cycle n) ~nu ~lambda in
            let arcs = all_strategies inst in
            ignore
              (E.check ctx
                 ~label:
                   (Printf.sprintf "S1 C%d lambda=%d: %d rotation arcs" n
                      lambda n)
                 (List.length arcs = n));
            let profile =
              Engine.Profile.uniform inst
                ~vp_support:(List.init n Fun.id)
                ~tp_support:arcs
            in
            let verdict =
              Engine.Verify.mixed_ne (Engine.Verify.Exhaustive 100_000) profile
            in
            ignore
              (E.check ctx
                 ~label:
                   (Printf.sprintf
                      "S1 C%d lambda=%d: uniform rotation verified NE" n
                      lambda)
                 (Engine.Verify.verdict_is_confirmed verdict));
            let gain = Engine.Profit.expected_tp profile in
            ignore
              (E.check ctx
                 ~label:
                   (Printf.sprintf "S1 C%d lambda=%d: gain = nu*lambda/n" n
                      lambda)
                 (Q.equal gain (Q.make (nu * lambda) n)));
            let pod = Q.div (Q.of_int nu) gain in
            ignore
              (E.check ctx
                 ~label:
                   (Printf.sprintf "S1 C%d lambda=%d: PoD = n/lambda" n lambda)
                 (Q.equal pod (Q.make n lambda)));
            Harness.Table.add_row table
              [
                string_of_int n;
                string_of_int lambda;
                string_of_int (List.length arcs);
                Engine.Verify.verdict_to_string verdict;
                q_str gain;
                q_str pod;
                q_str (Q.make n lambda);
              ]
          end)
        lambdas)
    ns;
  E.out ctx (Harness.Table.to_string table);
  (* Certificate gate on non-transitive families: against the uniform
     vertex-player profile, the greedy connected subgraph never beats
     the top-lambda vertex-load bound, and its gain is monotone
     nondecreasing in lambda (a larger connected subgraph can only
     cover more). *)
  let families =
    [
      ("star 9", Gen.star 9);
      ("path 8", Gen.path 8);
      ("wheel 8", Gen.wheel 8);
      ("petersen", Gen.petersen ());
    ]
  in
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      let prev = ref Q.zero in
      let monotone = ref true and bounded = ref true in
      List.iter
        (fun lambda ->
          let inst = SG.make ~graph:g ~nu ~lambda in
          let profile =
            Engine.Profile.uniform inst ~vp_support:(List.init n Fun.id)
              ~tp_support:[ SG.round_robin inst ~round:0 ]
          in
          let load = Engine.Profile.expected_load profile in
          let greedy =
            SG.greedy_response inst ~load:(Array.init n (Engine.Profile.expected_load profile))
          in
          let gain = Engine.Profile.expected_load_strategy profile greedy in
          let bound =
            SG.value_upper_bound inst ~load
              ~edge_load:(Engine.Profile.expected_load_edge profile)
          in
          if Q.( < ) gain !prev then monotone := false;
          if Q.( < ) bound gain then bounded := false;
          prev := gain)
        [ 1; 2; 3; 4 ];
      ignore
        (E.check ctx
           ~label:(Printf.sprintf "S1 %s: greedy gain <= top-lambda bound" name)
           !bounded);
      ignore
        (E.check ctx
           ~label:(Printf.sprintf "S1 %s: greedy gain monotone in lambda" name)
           !monotone))
    families;
  E.out ctx "\n";
  E.measure ctx "cycle_sizes" (E.Int (List.length ns))

(* S2 — fictitious play on the subgraph game.  On C_n with lambda-arcs
   the equilibrium defender gain is nu*lambda/n; the tail average of
   the empirical play should land near it (tolerances match F6's
   smoke/full split, loosened for the coarser dynamics). *)
let s2 ctx =
  let rounds = if E.is_smoke ctx then 1_500 else 20_000 in
  let tolerance_pct = if E.is_smoke ctx then 20.0 else 10.0 in
  let cases =
    [ ("C6 nu=4 lambda=2", 6, 4, 2); ("C8 nu=3 lambda=3", 8, 3, 3) ]
  in
  let results =
    List.map
      (fun (name, n, nu, lambda) ->
        let inst = SG.make ~graph:(Gen.cycle n) ~nu ~lambda in
        let r =
          Sim.Sim_instance.Subgraph.Fictitious.run (Prng.Rng.create 11) inst
            ~rounds
        in
        let expected = float_of_int (nu * lambda) /. float_of_int n in
        (name, expected, r))
      cases
  in
  let named =
    List.map
      (fun (name, _, r) ->
        let module F = Sim.Sim_instance.Subgraph.Fictitious in
        let series =
          List.filter_map
            (fun i ->
              let idx = (i * r.F.rounds / 12) - 1 in
              if idx >= 1 then
                Some (float_of_int (idx + 1), r.F.gain_series.(idx))
              else None)
            (List.init 13 Fun.id)
        in
        (name, series))
      results
  in
  E.out ctx
    (Harness.Table.multi_series
       ~title:"S2: fictitious play on the subgraph game — prefix-average gain"
       ~x_label:"round" ~y_label:"average gain" named);
  List.iter
    (fun (name, expected, r) ->
      let module F = Sim.Sim_instance.Subgraph.Fictitious in
      let tail = r.F.tail_avg_gain in
      let err_pct = 100.0 *. abs_float (tail -. expected) /. expected in
      ignore
        (E.check ctx
           ~label:(Printf.sprintf "S2 %s: tail average converges" name)
           (err_pct <= tolerance_pct));
      E.measure ctx
        (Printf.sprintf "tail_error_pct_%s" (String.sub name 0 2))
        (E.Float err_pct);
      E.outf ctx "  %-24s tail average %.4f vs predicted %.4f (error %.2f%%)\n"
        name tail expected err_pct)
    results;
  E.out ctx "\n";
  E.measure ctx "rounds" (E.Int rounds)

let register () =
  let r ~id ~claim ~expected run =
    Harness.Registry.register
      {
        Harness.Experiment.id;
        tag = Harness.Experiment.Extension;
        claim;
        expected;
        game = "subgraph";
        run;
      }
  in
  r ~id:"S1"
    ~claim:"subgraph defender: uniform rotation is an NE on cycles, PoD = n/lambda"
    ~expected:"verified mixed NE with gain nu*lambda/n; greedy within certificate bound"
    s1;
  r ~id:"S2"
    ~claim:"subgraph defender: fictitious play converges to the cycle NE value"
    ~expected:"tail-average defender gain near nu*lambda/n" s2
