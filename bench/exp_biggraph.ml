(* Experiment family G: the BigGraph tier.  The CSR substrate exists so
   the matching machinery behind Theorems 3.1/4.13/5.1 runs at graph
   sizes the paper's constructions are *about* but the seed
   representation could never reach.  G1 drives Hopcroft-Karp, König
   and the Hall expander check on a sparse random bipartite graph with
   10^5-10^6 vertices; G2 drives the blossom algorithm on a general
   graph of the same magnitude built to have a known perfect matching,
   and cross-checks blossom against Hopcroft-Karp where both apply.
   Stage wall-clocks are recorded as timings and accounted through
   [Harness.Obs] spans; every reported measure is a pure function of
   the seeded instance, so the cross-engine artifact equality gates
   (B14/B16, bench-smoke) extend over this tier too. *)

open Netgraph
module E = Harness.Experiment
module Obs = Harness.Obs

let timed ctx label f =
  let x, wall = Harness.Timer.time (fun () -> Obs.span label f) in
  E.record_timing ctx label { E.median = wall; min = wall; max = wall; runs = 1 };
  x

let involution_ok g mate =
  let ok = ref true in
  for v = 0 to Graph.n g - 1 do
    let w = mate.(v) in
    if w >= 0 && (w >= Graph.n g || mate.(w) <> v) then ok := false
  done;
  !ok

(* G1 — bipartite matching pipeline at 10^5..10^6 vertices: maximum
   matching, then the König cover and the Hall/expander verdict it
   certifies, all on one seeded sparse d-out instance. *)
let g1 ctx =
  let a = if E.is_smoke ctx then 60_000 else 500_000 in
  let d = 3 in
  let n = 2 * a in
  let rng = Prng.Rng.create 9_000_001 in
  let g =
    timed ctx "g1.generate" (fun () ->
        Gen.random_bipartite_sparse rng ~a ~b:a ~d)
  in
  let left = List.init a (fun i -> i) in
  let right = List.init a (fun i -> a + i) in
  E.measure ctx "n" (E.Int n);
  E.measure ctx "m" (E.Int (Graph.m g));
  ignore
    (E.check ctx ~label:"G1: d-out generator emits exactly a*d edges"
       (Graph.m g = a * d));
  let mm = timed ctx "g1.hopcroft_karp" (fun () ->
      Matching.Hopcroft_karp.max_matching g ~left ~right)
  in
  let size = mm.Matching.Hopcroft_karp.size in
  let deficiency = a - size in
  E.measure ctx "matching_size" (E.Int size);
  E.measure ctx "deficiency" (E.Int deficiency);
  ignore
    (E.check ctx ~label:"G1: mate array is an involution"
       (involution_ok g mm.Matching.Hopcroft_karp.mate));
  ignore
    (E.check ctx ~label:"G1: one matched edge per matched pair"
       (List.length mm.Matching.Hopcroft_karp.edges = size));
  (* König: |minimum vertex cover| = mu, and the cover is verified to
     cover by a full edge scan, not trusted from the theorem. *)
  let koenig = timed ctx "g1.koenig" (fun () -> Matching.Koenig.solve g) in
  let cover = koenig.Matching.Koenig.vertex_cover in
  E.measure ctx "vertex_cover_size" (E.Int (List.length cover));
  ignore
    (E.check ctx ~label:"G1: Koenig cover size equals matching size"
       (List.length cover = size));
  let in_cover = Array.make n false in
  List.iter (fun v -> in_cover.(v) <- true) cover;
  let covers_all =
    Graph.fold_edges g ~init:true ~f:(fun acc _ e ->
        acc && (in_cover.(e.Graph.u) || in_cover.(e.Graph.v)))
  in
  ignore (E.check ctx ~label:"G1: Koenig cover covers every edge" covers_all);
  (* Hall on the left side: the expander verdict must agree with the
     deficiency computed independently by Hopcroft-Karp. *)
  let hall = timed ctx "g1.hall" (fun () -> Matching.Hall.check g ~vc:left) in
  ignore
    (E.check ctx ~label:"G1: Hall verdict consistent with HK deficiency"
       (hall.Matching.Hall.expander = (deficiency = 0)));
  ignore
    (E.check ctx
       ~label:"G1: Hall verdict carries the matching witness it claims"
       (match hall with
       | { Matching.Hall.expander = true; saturating_matching = Some es; _ }
         -> List.length es = a
       | { Matching.Hall.expander = false; violating_set = Some vs; _ } ->
           vs <> []
       | _ -> false));
  E.outf ctx
    "G1 bipartite n=%d m=%d: mu=%d (deficiency %d), |VC|=%d, expander=%b\n"
    n (Graph.m g) size deficiency (List.length cover)
    hall.Matching.Hall.expander

(* G2 — general matching at 10^5..10^6 vertices.  A Chung-Lu power-law
   core with a pendant mate attached to every core vertex: the pendant
   edges form a perfect matching, so mu = n/2 exactly — a closed-form
   answer the blossom run is gated against — while the skewed core
   supplies the odd cycles that force real contractions.  Every
   augmenting search from a free vertex must succeed (a perfect
   matching exists), which is what keeps the run near-linear at this
   scale. *)
let g2 ctx =
  let core = if E.is_smoke ctx then 50_000 else 500_000 in
  let n = 2 * core in
  let rng = Prng.Rng.create 9_000_002 in
  let g =
    timed ctx "g2.generate" (fun () ->
        let cl =
          Gen.chung_lu rng ~n:core ~gamma:2.5 ~avg_degree:3.0
        in
        let bd =
          Graph.Builder.create ~edges_hint:(Graph.m cl + core) ~n ()
        in
        Graph.iter_edges cl ~f:(fun _ e ->
            Graph.Builder.add_edge bd e.Graph.u e.Graph.v);
        for i = 0 to core - 1 do
          Graph.Builder.add_edge bd i (core + i)
        done;
        Graph.Builder.finish bd)
  in
  E.measure ctx "n" (E.Int n);
  E.measure ctx "m" (E.Int (Graph.m g));
  let mm = timed ctx "g2.blossom" (fun () -> Matching.Blossom.max_matching g) in
  let size = mm.Matching.Blossom.size in
  E.measure ctx "matching_size" (E.Int size);
  ignore
    (E.check ctx
       ~label:"G2: blossom finds the pendant-saturated perfect matching"
       (size = core));
  ignore
    (E.check ctx ~label:"G2: mate array is an involution"
       (involution_ok g mm.Matching.Blossom.mate));
  ignore
    (E.check ctx ~label:"G2: one matched edge per matched pair"
       (List.length mm.Matching.Blossom.edges = size));
  (* Cross-engine agreement where both engines apply: on a bipartite
     instance blossom must reproduce the Hopcroft-Karp optimum. *)
  let a2 = if E.is_smoke ctx then 5_000 else 20_000 in
  let bip = Gen.random_bipartite_sparse rng ~a:a2 ~b:a2 ~d:3 in
  let hk_size, bl_size =
    timed ctx "g2.crosscheck" (fun () ->
        let left = List.init a2 (fun i -> i) in
        let right = List.init a2 (fun i -> a2 + i) in
        ( (Matching.Hopcroft_karp.max_matching bip ~left ~right)
            .Matching.Hopcroft_karp.size,
          Matching.Blossom.matching_number bip ))
  in
  E.measure ctx "crosscheck_size" (E.Int hk_size);
  ignore
    (E.check ctx
       ~label:"G2: blossom agrees with Hopcroft-Karp on a bipartite instance"
       (hk_size = bl_size));
  E.outf ctx "G2 general n=%d m=%d: mu=%d (perfect); crosscheck mu=%d on \
              bipartite n=%d\n"
    n (Graph.m g) size hk_size (2 * a2)

let register () =
  let r ~id ~claim ~expected run =
    Harness.Registry.register
      {
        Harness.Experiment.id;
        tag = Harness.Experiment.Extension;
        claim;
        expected;
        game = "tuple";
        run;
      }
  in
  r ~id:"G1"
    ~claim:
      "the CSR substrate carries the bipartite matching pipeline \
       (Hopcroft-Karp, Koenig cover, Hall expander verdict) to 10^5-10^6 \
       vertex instances"
    ~expected:
      "|VC| = mu with the cover verified edge-by-edge; Hall verdict matches \
       the HK deficiency; mate involution; stage wall-clocks recorded"
    g1;
  r ~id:"G2"
    ~claim:
      "the CSR substrate carries the blossom algorithm to 10^5-10^6 vertex \
       general graphs"
    ~expected:
      "mu = n/2 exactly on the pendant-saturated power-law instance; mate \
       involution; blossom = Hopcroft-Karp on a bipartite cross-check"
    g2
