(* Artifact gate for the @bench-smoke alias: re-parse a defender-bench/v1
   JSON artifact through Harness.Json (the same parser external tools are
   told to trust) and fail on schema drift or verdict degradation, so a
   sweep that silently emits a malformed or failing artifact cannot pass
   `dune runtest`.

     check_artifact.exe FILE.json

   Exit 0 when the artifact is well-formed, non-empty, and contains no
   degraded verdict and no failed check; exit 1 with a diagnostic
   otherwise. *)

module J = Harness.Json

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("check_artifact: " ^ s); exit 1) fmt

let member_exn key json ~ctx =
  match J.member key json with
  | Some v -> v
  | None -> fail "%s: missing field %S" ctx key

let as_int ~ctx = function
  | J.Int n -> n
  | _ -> fail "%s: expected an integer" ctx

let as_string ~ctx = function
  | J.String s -> s
  | _ -> fail "%s: expected a string" ctx

let () =
  let file =
    match Sys.argv with
    | [| _; file |] -> file
    | _ ->
        prerr_endline "usage: check_artifact.exe FILE.json";
        exit 2
  in
  let text =
    let ic = open_in file in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let json =
    match J.of_string text with
    | Ok j -> j
    | Error e -> fail "%s does not parse: %s" file e
  in
  let schema = as_string ~ctx:"schema" (member_exn "schema" json ~ctx:file) in
  if schema <> "defender-bench/v1" then
    fail "%s: unexpected schema %S (want \"defender-bench/v1\")" file schema;
  ignore (as_string ~ctx:"scale" (member_exn "scale" json ~ctx:file));
  let experiments =
    match member_exn "experiments" json ~ctx:file with
    | J.List [] -> fail "%s: empty experiment list" file
    | J.List es -> es
    | _ -> fail "%s: \"experiments\" is not a list" file
  in
  List.iter
    (fun e ->
      let id = as_string ~ctx:"experiment id" (member_exn "id" e ~ctx:file) in
      let ctx = Printf.sprintf "%s: experiment %s" file id in
      let verdict = as_string ~ctx (member_exn "verdict" e ~ctx) in
      (match verdict with
      | "pass" | "info" -> ()
      | "degraded" -> fail "%s: degraded verdict" ctx
      | other -> fail "%s: unknown verdict %S" ctx other);
      let checks = member_exn "checks" e ~ctx in
      let failed = as_int ~ctx (member_exn "failed" checks ~ctx) in
      if failed > 0 then fail "%s: %d failed check(s)" ctx failed;
      ignore (member_exn "measures" e ~ctx);
      ignore (member_exn "wall_s" e ~ctx))
    experiments;
  let summary = member_exn "summary" json ~ctx:file in
  let s_ctx = file ^ ": summary" in
  let total = as_int ~ctx:s_ctx (member_exn "total" summary ~ctx:s_ctx) in
  let degraded = as_int ~ctx:s_ctx (member_exn "degraded" summary ~ctx:s_ctx) in
  let checks_failed =
    as_int ~ctx:s_ctx (member_exn "checks_failed" summary ~ctx:s_ctx)
  in
  if total <> List.length experiments then
    fail "%s: total %d <> %d listed experiments" s_ctx total
      (List.length experiments);
  if degraded <> 0 then fail "%s: %d degraded experiment(s)" s_ctx degraded;
  if checks_failed <> 0 then fail "%s: %d failed check(s)" s_ctx checks_failed;
  Printf.printf
    "check_artifact: %s ok (%d experiments, schema defender-bench/v1, 0 \
     degraded, 0 failed checks)\n"
    file total
