(* Artifact gate for the @bench-smoke alias: re-parse a defender-bench/v1
   JSON artifact through Harness.Json (the same parser external tools are
   told to trust) and fail on schema drift or verdict degradation, so a
   sweep that silently emits a malformed or failing artifact cannot pass
   `dune runtest`.

     check_artifact.exe FILE.json             # gate one artifact
     check_artifact.exe --strip FILE.json     # print it timing-stripped
     check_artifact.exe --same-stripped A B   # equal modulo timings?

   The gate exits 0 when the artifact is well-formed, non-empty, and
   contains no degraded or crashed verdict and no failed check; exit 1
   with a diagnostic otherwise.  Per-experiment "metrics" objects (only
   present on --metrics/--trace sweeps) are shape-checked too, including
   that known scheduling-dependent counters (pool steals, pipe bytes)
   never appear in the deterministic "counters" section.  --strip
   prints the artifact with every nondeterministic field removed
   (Registry.strip_timings: wall clocks, Timer cells, float measures,
   span durations and volatile counters — deterministic counters stay),
   the normal form under which sequential and --jobs N sweeps of the
   same registry must agree; --same-stripped asserts exactly that for
   two artifact files.

   The field-by-field contract this program checks is documented in the
   "Artifact schema" section of EXPERIMENTS.md; keep the two in sync. *)

module J = Harness.Json

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("check_artifact: " ^ s); exit 1) fmt

(* Counters whose value depends on scheduling, buffering or completion
   order rather than on the computation alone.  They are registered
   [Obs.volatile] at their definition sites (parallel.ml, pool.ml); an
   artifact carrying one in the deterministic "counters" section was
   built against a miscategorized registration and would flakily break
   the stripped normal form that --same-stripped gates. *)
let scheduling_dependent = [ "parallel.pipe_bytes"; "pool.steals" ]

let member_exn key json ~ctx =
  match J.member key json with
  | Some v -> v
  | None -> fail "%s: missing field %S" ctx key

let as_int ~ctx = function
  | J.Int n -> n
  | _ -> fail "%s: expected an integer" ctx

let as_string ~ctx = function
  | J.String s -> s
  | _ -> fail "%s: expected a string" ctx

let load file =
  if not (Sys.file_exists file) then fail "%s: no such file" file;
  let text =
    let ic = open_in file in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match J.of_string text with
  | Ok j -> j
  | Error e -> fail "%s does not parse: %s" file e

let gate file =
  let json = load file in
  let schema = as_string ~ctx:"schema" (member_exn "schema" json ~ctx:file) in
  if schema <> "defender-bench/v1" then
    fail "%s: unexpected schema %S (want \"defender-bench/v1\")" file schema;
  ignore (as_string ~ctx:"scale" (member_exn "scale" json ~ctx:file));
  let experiments =
    match member_exn "experiments" json ~ctx:file with
    | J.List [] -> fail "%s: empty experiment list" file
    | J.List es -> es
    | _ -> fail "%s: \"experiments\" is not a list" file
  in
  List.iter
    (fun e ->
      let id = as_string ~ctx:"experiment id" (member_exn "id" e ~ctx:file) in
      let ctx = Printf.sprintf "%s: experiment %s" file id in
      let verdict = as_string ~ctx (member_exn "verdict" e ~ctx) in
      (match verdict with
      | "pass" | "info" -> ()
      | "degraded" -> fail "%s: degraded verdict" ctx
      | "crashed" ->
          let reason =
            match J.member "checks" e with
            | Some checks -> (
                match J.member "failed_labels" checks with
                | Some (J.List (J.String r :: _)) -> ": " ^ r
                | _ -> "")
            | None -> ""
          in
          fail "%s: crashed verdict (worker died)%s" ctx reason
      | other -> fail "%s: unknown verdict %S" ctx other);
      let checks = member_exn "checks" e ~ctx in
      let failed = as_int ~ctx (member_exn "failed" checks ~ctx) in
      if failed > 0 then fail "%s: %d failed check(s)" ctx failed;
      (* Optional game tag: absent means the tuple game; when present it
         must name a known GAME instance. *)
      (match J.member "game" e with
      | None -> ()
      | Some (J.String ("tuple" | "subgraph")) -> ()
      | Some (J.String g) -> fail "%s: unknown game tag %S" ctx g
      | Some _ -> fail "%s: \"game\" is not a string" ctx);
      ignore (member_exn "measures" e ~ctx);
      ignore (member_exn "wall_s" e ~ctx);
      (* Optional metrics object: three sections, positive integer
         counters, spans with a positive "count" (and optionally a
         "total_s" duration, present only on --trace sweeps). *)
      match J.member "metrics" e with
      | None -> ()
      | Some m ->
          let section k =
            match J.member k m with
            | Some (J.Obj fields) -> fields
            | Some _ -> fail "%s: metrics.%s is not an object" ctx k
            | None -> fail "%s: metrics is missing section %S" ctx k
          in
          List.iter
            (fun (name, v) ->
              match v with
              | J.Int n when n > 0 -> ()
              | J.Int _ -> fail "%s: metrics counter %s is not positive" ctx name
              | _ -> fail "%s: metrics counter %s is not an integer" ctx name)
            (section "counters" @ section "volatile");
          List.iter
            (fun (name, _) ->
              if List.mem name scheduling_dependent then
                fail
                  "%s: scheduling-dependent counter %s in the deterministic \
                   \"counters\" section (must be registered Obs.volatile)"
                  ctx name)
            (section "counters");
          List.iter
            (fun (name, v) ->
              match J.member "count" v with
              | Some (J.Int n) when n > 0 -> ()
              | _ -> fail "%s: metrics span %s lacks a positive count" ctx name)
            (section "spans"))
    experiments;
  let summary = member_exn "summary" json ~ctx:file in
  let s_ctx = file ^ ": summary" in
  let total = as_int ~ctx:s_ctx (member_exn "total" summary ~ctx:s_ctx) in
  let degraded = as_int ~ctx:s_ctx (member_exn "degraded" summary ~ctx:s_ctx) in
  (* pre-crash-verdict artifacts (BENCH_2/3.json) lack the field: 0 *)
  let crashed =
    match J.member "crashed" summary with
    | Some v -> as_int ~ctx:s_ctx v
    | None -> 0
  in
  let checks_failed =
    as_int ~ctx:s_ctx (member_exn "checks_failed" summary ~ctx:s_ctx)
  in
  if total <> List.length experiments then
    fail "%s: total %d <> %d listed experiments" s_ctx total
      (List.length experiments);
  if degraded <> 0 then fail "%s: %d degraded experiment(s)" s_ctx degraded;
  if crashed <> 0 then fail "%s: %d crashed experiment(s)" s_ctx crashed;
  if checks_failed <> 0 then fail "%s: %d failed check(s)" s_ctx checks_failed;
  Printf.printf
    "check_artifact: %s ok (%d experiments, schema defender-bench/v1, 0 \
     degraded, 0 crashed, 0 failed checks)\n"
    file total

let strip file =
  print_endline
    (J.to_string ~pretty:true (Harness.Registry.strip_timings (load file)))

let same_stripped a b =
  let sa = Harness.Registry.strip_timings (load a) in
  let sb = Harness.Registry.strip_timings (load b) in
  if sa = sb then
    Printf.printf "check_artifact: %s and %s agree modulo timing fields\n" a b
  else begin
    (* Point at the first differing experiment id, if any, before the
       generic failure: "they differ" alone is unactionable. *)
    let ids j =
      match J.member "experiments" j with
      | Some (J.List es) ->
          List.map
            (fun e ->
              match J.member "id" e with Some (J.String s) -> s | _ -> "?")
            es
      | _ -> []
    in
    let culprit =
      List.find_opt
        (fun id ->
          let exp j =
            match J.member "experiments" j with
            | Some (J.List es) ->
                List.find_opt (fun e -> J.member "id" e = Some (J.String id)) es
            | _ -> None
          in
          exp sa <> exp sb)
        (ids sa @ ids sb)
    in
    match culprit with
    | Some id -> fail "%s and %s differ beyond timing fields (experiment %s)" a b id
    | None -> fail "%s and %s differ beyond timing fields" a b
  end

let () =
  match Sys.argv with
  | [| _; file |] -> gate file
  | [| _; "--strip"; file |] -> strip file
  | [| _; "--same-stripped"; a; b |] -> same_stripped a b
  | _ ->
      prerr_endline
        "usage: check_artifact.exe FILE.json\n\
        \       check_artifact.exe --strip FILE.json\n\
        \       check_artifact.exe --same-stripped A.json B.json";
      exit 2
