(* End-to-end daemon session under `dune runtest` (@bench-smoke): fork
   the real defender service on a temp Unix socket, then script the
   canonical lifecycle against it —

     ping -> cold solve -> identical warm re-query (cache hit,
     byte-identical payload) -> relabeled-graph re-query (hit under the
     canonical key) -> malformed frame (error + closed connection,
     server survives) -> shutdown op (graceful drain, exit 0)

   — gating the exact counter values the protocol promises at each
   step.  Any mismatch prints a diagnostic and exits 1, failing the
   alias. *)

module J = Harness.Json
module D = Harness.Daemon

let failures = ref 0

let check label ok =
  if not ok then begin
    incr failures;
    Printf.printf "daemon_smoke FAIL: %s\n" label
  end

let field name j =
  match J.member name j with
  | Some v -> v
  | None ->
      check (Printf.sprintf "response lacks %S in %s" name (J.to_string j))
        false;
      J.Null

let metric name j =
  match J.member name (field "metrics" j) with
  | Some (J.Int v) -> v
  | _ -> -1

let counters label j ~requests ~hits ~busy =
  check
    (Printf.sprintf "%s: counters (%d,%d,%d), wanted (%d,%d,%d)" label
       (metric "daemon.requests" j)
       (metric "daemon.cache_hits" j)
       (metric "daemon.busy_rejects" j)
       requests hits busy)
    (metric "daemon.requests" j = requests
    && metric "daemon.cache_hits" j = hits
    && metric "daemon.busy_rejects" j = busy)

let () =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "defender_smoke_%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      (try
         ignore
           (Service.Daemon_service.serve ~address:(D.Unix_socket path)
              ~workers:2 ())
       with _ -> Unix._exit 2);
      Unix._exit 0
  | daemon ->
      let finished = ref false in
      Fun.protect ~finally:(fun () ->
          if not !finished then begin
            (try Unix.kill daemon Sys.sigkill with Unix.Unix_error _ -> ());
            ignore (Harness.Wire.waitpid_retry daemon)
          end;
          try Unix.unlink path with Unix.Unix_error _ -> ())
      @@ fun () ->
      let conn = D.Client.connect ~retries:100 (D.Unix_socket path) in
      let ask msg =
        match D.Client.request conn msg with
        | Ok r -> r
        | Error e ->
            check ("request failed: " ^ e) false;
            J.Null
      in
      (* 1. ping *)
      let r = ask (J.Obj [ ("id", J.Int 1); ("op", J.String "ping") ]) in
      check "ping ok" (field "ok" r = J.Bool true);
      check "pong" (field "result" r = J.String "pong");
      counters "ping" r ~requests:1 ~hits:0 ~busy:0;
      (* 2. cold solve: path 6, k=2, nu=3 (gain = k*nu/|IS| = 2) *)
      let g = Netgraph.Gen.path 6 in
      let solve g6 =
        J.Obj
          [
            ("id", J.Int 2);
            ("op", J.String "solve");
            ("graph6", J.String g6);
            ("k", J.Int 2);
            ("nu", J.Int 3);
          ]
      in
      let cold = ask (solve (Netgraph.Graph6.encode g)) in
      check "cold solve ok" (field "ok" cold = J.Bool true);
      check "cold is a miss" (field "cached" cold = J.Bool false);
      check "cold gain 2"
        (J.member "gain" (field "result" cold) = Some (J.String "2"));
      check "cold verdict confirmed"
        (J.member "verdict" (field "result" cold)
        = Some (J.String "confirmed"));
      counters "cold" cold ~requests:2 ~hits:0 ~busy:0;
      (* 3. identical warm re-query *)
      let warm = ask (solve (Netgraph.Graph6.encode g)) in
      check "warm is a hit" (field "cached" warm = J.Bool true);
      check "warm payload byte-identical"
        (J.to_string (field "result" cold) = J.to_string (field "result" warm));
      counters "warm" warm ~requests:3 ~hits:1 ~busy:0;
      (* 4. the same 6-path under a different labeling also hits: the
         cache key is the canonical form, not the client's bytes *)
      let relabeled =
        Netgraph.Graph.make ~n:6 [ (3, 5); (5, 1); (1, 0); (0, 2); (2, 4) ]
      in
      let g6' = Netgraph.Graph6.encode relabeled in
      check "relabeling changed the wire bytes"
        (g6' <> Netgraph.Graph6.encode g);
      let iso = ask (solve g6') in
      check "relabeled query is a hit" (field "cached" iso = J.Bool true);
      check "relabeled payload byte-identical"
        (J.to_string (field "result" cold) = J.to_string (field "result" iso));
      counters "relabeled" iso ~requests:4 ~hits:2 ~busy:0;
      D.Client.close conn;
      (* 5. malformed frame: diagnosed, connection dropped, server fine *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      let junk = "this is not a frame\n" in
      ignore (Unix.write fd (Bytes.of_string junk) 0 (String.length junk));
      (match Harness.Wire.read_frame fd with
      | Some (Ok r) -> check "bad frame diagnosed" (field "ok" r = J.Bool false)
      | _ -> check "bad frame: no diagnostic" false);
      check "bad-frame connection closed" (Harness.Wire.read_frame fd = None);
      Harness.Wire.close_quietly fd;
      (* 6. graceful shutdown by op; drain must exit 0 and remove the
         socket file *)
      let conn2 = D.Client.connect (D.Unix_socket path) in
      let r =
        match D.Client.request conn2 (J.Obj [ ("op", J.String "shutdown") ]) with
        | Ok r -> r
        | Error e ->
            check ("shutdown request failed: " ^ e) false;
            J.Null
      in
      check "shutdown acknowledged" (field "result" r = J.String "draining");
      D.Client.close conn2;
      (match Harness.Wire.waitpid_retry daemon with
      | Unix.WEXITED 0 -> ()
      | Unix.WEXITED c ->
          check (Printf.sprintf "daemon exited %d, wanted 0" c) false
      | Unix.WSIGNALED s ->
          check
            (Printf.sprintf "daemon killed by %s" (Harness.Wire.signal_name s))
            false
      | Unix.WSTOPPED _ -> check "daemon stopped" false);
      finished := true;
      check "socket file removed on drain" (not (Sys.file_exists path));
      if !failures > 0 then begin
        Printf.printf "daemon_smoke: %d failure(s)\n" !failures;
        exit 1
      end
      else print_endline "daemon_smoke: full session ok"
