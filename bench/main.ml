(* Benchmark harness entry point: regenerates every experiment of
   EXPERIMENTS.md (tables T1-T7 and ablation A1, figures F1-F4, Bechamel
   microbenchmarks B1-B12).

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- tables  # only the tables
     dune exec bench/main.exe -- figures # only the figures
     dune exec bench/main.exe -- micro   # only the microbenchmarks
     dune exec bench/main.exe -- smoke   # reduced-size kernel checks
                                         # (runs under `dune runtest`)
*)

let () =
  let what = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  Printf.printf
    "Reproduction harness: \"The Power of the Defender\" (ICDCS 2006)\n\
     ================================================================\n\n";
  (match what with
  | "tables" -> Exp_tables.run_all ()
  | "figures" -> Exp_figures.run_all ()
  | "micro" -> Micro.run_all ()
  | "smoke" -> Micro.smoke ()
  | "all" ->
      Exp_tables.run_all ();
      Exp_figures.run_all ();
      Micro.run_all ()
  | other ->
      Printf.eprintf "unknown selector %S (use tables|figures|micro|smoke|all)\n"
        other;
      exit 2);
  print_endline "done."
