(* Benchmark harness entry point: a generic driver over the experiment
   registry (tables T1-T12 + ablations A1-A2, figures F1-F6, Bechamel
   microbenchmarks B0-B16, subgraph S1-S2, biggraph G1-G2, double-oracle
   D1-D3).

     dune exec bench/main.exe                       # everything, full scale
     dune exec bench/main.exe -- tables             # legacy group selectors
     dune exec bench/main.exe -- figures            #   (tables|figures|micro
     dune exec bench/main.exe -- micro              #    |subgraph|biggraph
     dune exec bench/main.exe -- oracle             #    |oracle|smoke|all)
     dune exec bench/main.exe -- smoke              # reduced-size sweep of the
                                                    # whole registry (runs
                                                    # under `dune runtest`)
     dune exec bench/main.exe -- --list             # registered experiments
     dune exec bench/main.exe -- --only T4,F2       # just those experiments
     dune exec bench/main.exe -- --json BENCH_2.json  # write the JSON artifact
     dune exec bench/main.exe -- --jobs 4           # forked worker pool
     dune exec bench/main.exe -- --jobs 4 --pool    # persistent worker pool
     dune exec bench/main.exe -- --timeout 60       # per-experiment budget
     dune exec bench/main.exe -- --metrics          # record Obs counters
     dune exec bench/main.exe -- --trace            # + span wall time

   --jobs N runs the selected experiments across N forked workers
   (results reassemble in registration order; a worker that dies or
   exceeds --timeout crashes only its own experiment).  The default
   --jobs 1 is the in-process sequential runner, byte-identical to the
   historical output.  --pool swaps fork-per-experiment for a persistent
   pre-forked pool (Harness.Pool): workers live across experiments, a
   crashed worker is respawned and its experiment retried once.

   Exits 0 when every selected experiment passes, 1 if any verdict is
   degraded or crashed (--force-degrade / --force-crash ID[,ID..] force
   those paths for testing), 2 on usage errors. *)

module Runner = Experiments.Runner

let usage () =
  prerr_endline
    "usage: main.exe [tables|figures|micro|subgraph|biggraph|oracle|smoke|all]\n\
    \       [--smoke] [--list]\n\
    \       [--only ID[,ID..]] [--json FILE] [--jobs N] [--pool]\n\
    \       [--timeout SECS]\n\
    \       [--metrics] [--trace]\n\
    \       [--force-degrade ID[,ID..]] [--force-crash ID[,ID..]] [--quiet]"

let split_ids s = String.split_on_char ',' s |> List.filter (fun x -> x <> "")

let () =
  let opts = ref Runner.default_opts in
  let list_only = ref false in
  let rec parse = function
    | [] -> ()
    | "--list" :: rest ->
        list_only := true;
        parse rest
    | "--smoke" :: rest ->
        opts := { !opts with Runner.scale = Harness.Experiment.Smoke };
        parse rest
    | "--quiet" :: rest ->
        opts := { !opts with Runner.echo = false };
        parse rest
    | "--metrics" :: rest ->
        opts := { !opts with Runner.metrics = true };
        parse rest
    | "--trace" :: rest ->
        opts := { !opts with Runner.trace = true };
        parse rest
    | "--pool" :: rest ->
        opts := { !opts with Runner.pool = true };
        parse rest
    | "--only" :: ids :: rest ->
        opts := { !opts with Runner.only = split_ids ids };
        parse rest
    | "--json" :: path :: rest ->
        opts := { !opts with Runner.json_out = Some path };
        parse rest
    | "--force-degrade" :: ids :: rest ->
        opts := { !opts with Runner.force_degrade = split_ids ids };
        parse rest
    | "--force-crash" :: ids :: rest ->
        opts := { !opts with Runner.force_crash = split_ids ids };
        parse rest
    | "--jobs" :: count :: rest -> (
        match int_of_string_opt count with
        | Some n when n >= 1 ->
            opts := { !opts with Runner.jobs = n };
            parse rest
        | _ ->
            Printf.eprintf "--jobs: expected a positive integer, got %S\n" count;
            usage ();
            exit 2)
    | "--timeout" :: secs :: rest -> (
        match float_of_string_opt secs with
        | Some t when t > 0.0 ->
            opts := { !opts with Runner.timeout = Some t };
            parse rest
        | _ ->
            Printf.eprintf "--timeout: expected positive seconds, got %S\n" secs;
            usage ();
            exit 2)
    | [ ("--only" | "--json" | "--force-degrade" | "--force-crash" | "--jobs"
        | "--timeout") ]
    | "--help" :: _
    | "-h" :: _ ->
        usage ();
        exit 2
    | sel :: rest when Runner.group_prefixes sel <> None ->
        let scale =
          if sel = "smoke" then Harness.Experiment.Smoke else !opts.Runner.scale
        in
        opts := { !opts with Runner.group = sel; scale };
        parse rest
    | other :: _ ->
        Printf.eprintf "unknown argument %S\n" other;
        usage ();
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !list_only then print_string (Runner.list_text ())
  else begin
    if !opts.Runner.echo then
      Printf.printf
        "Reproduction harness: \"The Power of the Defender\" (ICDCS 2006)\n\
         ================================================================\n\n";
    let code = Runner.run !opts in
    if !opts.Runner.echo && code = 0 then print_endline "done.";
    exit code
  end
