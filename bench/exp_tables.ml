(* Table experiments T1-T12 and ablations A1-A2 (see EXPERIMENTS.md):
   each regenerates one quantitative claim of the paper as an aligned
   table, cross-validated against an independent oracle where one
   exists.  Every experiment is registered as a Harness.Experiment
   descriptor: the text rendering is unchanged at full scale, and every
   row-level cross-check is additionally recorded as a structured check
   so the verdict ("44/44 rows agree") lands in the JSON artifact. *)

open Netgraph
open Exp_util
module E = Harness.Experiment
module Q = Exact.Q
module V = Defender.Verify

(* T1 — Theorem 3.1 / Corollary 3.2: pure NE exists iff an edge cover of
   size k exists; polynomial decision vs brute-force oracle. *)
let t1 ctx =
  let table =
    Harness.Table.create ~title:"T1: pure NE existence (Theorem 3.1) vs brute force"
      ~columns:[ "graph"; "n"; "m"; "rho"; "k"; "theorem"; "brute"; "agree" ]
  in
  let mismatches = ref 0 and rows = ref 0 in
  List.iter
    (fun (name, g) ->
      List.iter
        (fun k ->
          if k <= Graph.m g then begin
            let m = model ~g ~nu:2 ~k in
            let thm = Defender.Pure_nash.exists m in
            let brute = Defender.Pure_nash.exists_brute_force m in
            let agree =
              E.check ctx
                ~label:(Printf.sprintf "T1 %s k=%d: theorem = brute force" name k)
                (thm = brute)
            in
            if not agree then incr mismatches;
            incr rows;
            Harness.Table.add_row table
              [
                name;
                string_of_int (Graph.n g);
                string_of_int (Graph.m g);
                string_of_int (Matching.Edge_cover.rho g);
                string_of_int k;
                yesno thm;
                yesno brute;
                checkmark agree;
              ]
          end)
        [ 1; 2; 3 ])
    (small_atlas ());
  E.out ctx (Harness.Table.to_string table);
  E.outf ctx "T1 mismatches: %d (paper: 0 expected)\n\n" !mismatches;
  E.measure ctx "rows" (E.Int !rows);
  E.measure ctx "mismatches" (E.Int !mismatches)

(* T2 — Corollary 3.3: n >= 2k+1 forces non-existence; the n = 2k boundary
   admits pure NE exactly when a perfect cover of size k exists. *)
let t2 ctx =
  let table =
    Harness.Table.create ~title:"T2: the n = 2k+1 boundary (Corollary 3.3)"
      ~columns:[ "family"; "k"; "n"; "n>=2k+1"; "pure NE"; "consistent" ]
  in
  let consistent = ref true and rows = ref 0 in
  let families =
    [
      ("path", fun n -> if n >= 2 then Some (Gen.path n) else None);
      ("cycle", fun n -> if n >= 3 then Some (Gen.cycle n) else None);
      ("complete", fun n -> if n >= 2 then Some (Gen.complete n) else None);
    ]
  in
  List.iter
    (fun (fam, make) ->
      List.iter
        (fun k ->
          List.iter
            (fun n ->
              match make n with
              | Some g when k <= Graph.m g ->
                  let m = model ~g ~nu:2 ~k in
                  let exists = Defender.Pure_nash.exists m in
                  let boundary = n >= (2 * k) + 1 in
                  let row_ok =
                    E.check ctx
                      ~label:
                        (Printf.sprintf "T2 %s k=%d n=%d: corollary holds" fam k n)
                      (not (boundary && exists))
                  in
                  if not row_ok then consistent := false;
                  incr rows;
                  Harness.Table.add_row table
                    [
                      fam;
                      string_of_int k;
                      string_of_int n;
                      yesno boundary;
                      yesno exists;
                      checkmark row_ok;
                    ]
              | _ -> ())
            [ (2 * k) - 1; 2 * k; (2 * k) + 1; (2 * k) + 2 ])
        [ 1; 2; 3 ])
    families;
  E.out ctx (Harness.Table.to_string table);
  E.outf ctx "T2 corollary violated: %s (paper: never)\n\n"
    (if !consistent then "never" else "VIOLATED");
  E.measure ctx "rows" (E.Int !rows)

(* T3 — Theorem 3.4: the characterization agrees with the definitional
   best-response check on random profiles.  Known exception (DESIGN.md):
   "saturating" NEs with IP_tp = nu, where the defender already catches
   everyone and its indifference stops forcing the vertex-cover condition;
   every disagreement must be of that kind. *)
let t3 ctx =
  let profiles = if E.is_smoke ctx then 40 else 150 in
  let rng = Prng.Rng.create 31337 in
  let total = ref 0
  and nash = ref 0
  and agree = ref 0
  and saturating = ref 0
  and unexplained = ref 0 in
  while !total < profiles do
    let g = Gen.gnp_connected rng ~n:(4 + Prng.Rng.int rng 3) ~p:0.4 in
    let nu = 1 + Prng.Rng.int rng 3 in
    let k = 1 + Prng.Rng.int rng (min 2 (Graph.m g)) in
    let m = model ~g ~nu ~k in
    let vertices = Array.init (Graph.n g) Fun.id in
    let support =
      Array.to_list
        (Prng.Rng.sample_without_replacement rng
           ~count:(1 + Prng.Rng.int rng (Graph.n g))
           vertices)
    in
    let edge_ids = Array.init (Graph.m g) Fun.id in
    let tuples =
      List.init
        (1 + Prng.Rng.int rng 3)
        (fun _ ->
          Defender.Tuple.of_list g
            (Array.to_list (Prng.Rng.sample_without_replacement rng ~count:k edge_ids)))
      |> List.sort_uniq Defender.Tuple.compare
    in
    let prof = Defender.Profile.uniform m ~vp_support:support ~tp_support:tuples in
    incr total;
    let direct = V.verdict_is_confirmed (V.mixed_ne (V.Exhaustive 500_000) prof) in
    let characterized = Defender.Characterization.holds (V.Exhaustive 500_000) prof in
    if direct then incr nash;
    let explained =
      if direct = characterized then begin
        incr agree;
        true
      end
      else if
        direct && Q.equal (Defender.Profit.expected_tp prof) (Q.of_int nu)
      then begin
        incr saturating;
        true
      end
      else begin
        incr unexplained;
        false
      end
    in
    ignore
      (E.check ctx
         ~label:(Printf.sprintf "T3 profile %d: agreement or saturating" !total)
         explained)
  done;
  let table =
    Harness.Table.create
      ~title:"T3: Theorem 3.4 characterization vs definitional NE check"
      ~columns:
        [
          "random profiles";
          "NEs found";
          "agreements";
          "saturating exceptions";
          "unexplained";
        ]
  in
  Harness.Table.add_row table
    [
      string_of_int !total;
      string_of_int !nash;
      string_of_int !agree;
      string_of_int !saturating;
      string_of_int !unexplained;
    ];
  E.out ctx (Harness.Table.to_string table);
  E.outf ctx
    "T3: the saturating exceptions (defender already catches all nu attackers \
     w.p. 1) are the\n\
     documented gap in the paper's necessity proof — DESIGN.md proves the \
     equivalence whenever\n\
     IP_tp < nu, so 'unexplained' must be 0.\n\n";
  E.measure ctx "profiles" (E.Int !total);
  E.measure ctx "nes_found" (E.Int !nash);
  E.measure ctx "agreements" (E.Int !agree);
  E.measure ctx "saturating" (E.Int !saturating);
  E.measure ctx "unexplained" (E.Int !unexplained)

(* T4 — Lemma 4.1 + Claim 4.9: the A_tuple construction is an NE; the
   cyclic lift uses delta = E/gcd(E,k) tuples, each edge in k/gcd(E,k). *)
let t4 ctx =
  let table =
    Harness.Table.create ~title:"T4: k-matching NE construction (Lemma 4.1, Claim 4.9)"
      ~columns:
        [ "graph"; "k"; "|IS|=E_num"; "delta"; "per-edge mult"; "claim 4.9"; "NE verified" ]
  in
  let rows = ref 0 in
  List.iter
    (fun (name, g) ->
      match Defender.Matching_nash.find_partition g with
      | None -> ()
      | Some p ->
          let is_size = List.length p.Defender.Matching_nash.is in
          List.iter
            (fun k ->
              if k >= 1 && k <= is_size then begin
                let m = model ~g ~nu:3 ~k in
                let prof = ok (Defender.Tuple_nash.a_tuple m p) in
                let tuples = Defender.Profile.tp_support prof in
                let edges = Defender.Profile.tp_support_edges prof in
                let delta = Defender.Tuple_nash.delta ~e_num:is_size ~k in
                let mult = Defender.Tuple_nash.multiplicity ~e_num:is_size ~k in
                let claim49 =
                  E.check ctx
                    ~label:(Printf.sprintf "T4 %s k=%d: claim 4.9 counts" name k)
                    (List.length tuples = delta
                    && List.for_all
                         (fun id ->
                           List.length
                             (List.filter
                                (fun t -> Defender.Tuple.contains_edge t id)
                                tuples)
                           = mult)
                         edges)
                in
                let verified =
                  E.check ctx
                    ~label:(Printf.sprintf "T4 %s k=%d: NE verified" name k)
                    (V.verdict_is_confirmed (V.mixed_ne V.Certificate prof))
                in
                incr rows;
                Harness.Table.add_row table
                  [
                    name;
                    string_of_int k;
                    string_of_int is_size;
                    string_of_int delta;
                    string_of_int mult;
                    checkmark claim49;
                    yesno verified;
                  ]
              end)
            (List.sort_uniq compare [ 1; 2; 3; is_size ])
        )
    (small_atlas ());
  E.out ctx (Harness.Table.to_string table);
  E.out ctx "\n";
  E.measure ctx "rows" (E.Int !rows)

(* T5 — Theorem 4.5: the reduction works in both directions and round
   trips; the k <= |IS| feasibility boundary is sharp. *)
let t5 ctx =
  let table =
    Harness.Table.create ~title:"T5: the Theorem 4.5 reduction, both directions"
      ~columns:[ "graph"; "|IS|"; "k"; "lift"; "back"; "round trip"; "k=|IS|+1" ]
  in
  let rows = ref 0 in
  List.iter
    (fun (name, g) ->
      match Defender.Matching_nash.solve_auto (model ~g ~nu:3 ~k:1) with
      | Error _ -> ()
      | Ok edge_prof ->
          let is_size = List.length (Defender.Profile.vp_support_union edge_prof) in
          List.iter
            (fun k ->
              if k >= 1 && k <= is_size && k <= Graph.m g then begin
                let lift = Defender.Reduction.edge_to_tuple ~k edge_prof in
                let lift_ok =
                  E.check ctx
                    ~label:(Printf.sprintf "T5 %s k=%d: lift" name k)
                    (Result.is_ok lift)
                in
                let back_ok =
                  E.check ctx
                    ~label:(Printf.sprintf "T5 %s k=%d: back" name k)
                    (match lift with
                    | Ok lifted ->
                        Defender.Matching_nash.is_matching_configuration
                          (Defender.Reduction.tuple_to_edge lifted)
                    | Error _ -> false)
                in
                let rt =
                  E.check ctx
                    ~label:(Printf.sprintf "T5 %s k=%d: round trip" name k)
                    (Defender.Reduction.round_trip_preserves ~k edge_prof)
                in
                let beyond =
                  if is_size + 1 <= Graph.m g then
                    match Defender.Reduction.edge_to_tuple ~k:(is_size + 1) edge_prof with
                    | Error _ -> "refused"
                    | Ok _ -> "ACCEPTED?!"
                  else "n/a"
                in
                ignore
                  (E.check ctx
                     ~label:(Printf.sprintf "T5 %s k=%d: k=|IS|+1 refused" name k)
                     (beyond <> "ACCEPTED?!"));
                incr rows;
                Harness.Table.add_row table
                  [
                    name;
                    string_of_int is_size;
                    string_of_int k;
                    yesno lift_ok;
                    yesno back_ok;
                    checkmark rt;
                    beyond;
                  ]
              end)
            (List.sort_uniq compare [ 1; 2; is_size ])
        )
    (small_atlas ());
  E.out ctx (Harness.Table.to_string table);
  E.out ctx "\n";
  E.measure ctx "rows" (E.Int !rows)

(* T6 — Corollaries 4.7/4.10: IP_tp(k-matching NE) = k*nu/|IS| exactly. *)
let t6 ctx =
  let table =
    Harness.Table.create
      ~title:"T6: defender gain IP_tp = k*nu/|IS| (Corollaries 4.7/4.10, exact)"
      ~columns:[ "graph"; "nu"; "|IS|"; "k"; "IP_tp(1)"; "IP_tp(k)"; "ratio"; "= k" ]
  in
  let rows = ref 0 in
  List.iter
    (fun (name, g) ->
      List.iter
        (fun nu ->
          match Defender.Matching_nash.solve_auto (model ~g ~nu ~k:1) with
          | Error _ -> ()
          | Ok edge_prof ->
              let is_size =
                List.length (Defender.Profile.vp_support_union edge_prof)
              in
              let base = Defender.Gain.defender_gain edge_prof in
              List.iter
                (fun k ->
                  if k >= 2 && k <= is_size then
                    match Defender.Reduction.edge_to_tuple ~k edge_prof with
                    | Error _ -> ()
                    | Ok lifted ->
                        let gain = Defender.Gain.defender_gain lifted in
                        let ratio = Defender.Gain.gain_ratio lifted edge_prof in
                        let exact =
                          E.check ctx
                            ~label:
                              (Printf.sprintf "T6 %s nu=%d k=%d: ratio = k" name nu k)
                            (Q.equal ratio (Q.of_int k))
                        in
                        incr rows;
                        Harness.Table.add_row table
                          [
                            name;
                            string_of_int nu;
                            string_of_int is_size;
                            string_of_int k;
                            q_str base;
                            q_str gain;
                            q_str ratio;
                            checkmark exact;
                          ])
                (List.sort_uniq compare [ 2; 3; is_size ]))
        [ 1; 5 ])
    [ List.nth (small_atlas ()) 1; List.nth (small_atlas ()) 3;
      ("K(3,3)", Gen.complete_bipartite 3 3); ("grid-3x3", Gen.grid 3 3);
      ("star-6", Gen.star 6) ];
  E.out ctx (Harness.Table.to_string table);
  E.out ctx "\n";
  E.measure ctx "rows" (E.Int !rows)

(* T7 — equations (1)-(2): analytic expected profits match empirical play
   (Monte Carlo, 4-sigma band). *)
let t7 ctx =
  let rounds = if E.is_smoke ctx then 4_000 else 30_000 in
  let table =
    Harness.Table.create ~title:"T7: analytic vs Monte-Carlo defender gain"
      ~columns:[ "graph"; "nu"; "k"; "analytic"; "simulated"; "|delta|"; "within 4sd" ]
  in
  let cases =
    [
      ("path-6", Gen.path 6, 4, 2);
      ("cycle-8", Gen.cycle 8, 5, 3);
      ("star-7", Gen.star 7, 3, 2);
      ("K(3,4)", Gen.complete_bipartite 3 4, 6, 2);
      ("grid-3x3", Gen.grid 3 3, 4, 3);
      ("tree-d3", Gen.binary_tree 3, 5, 4);
    ]
  in
  let worst = ref 0.0 in
  List.iter
    (fun (name, g, nu, k) ->
      let m = model ~g ~nu ~k in
      let prof = ok (Defender.Tuple_nash.a_tuple_auto m) in
      let stats = Sim.Engine.play (Prng.Rng.create 9090) prof ~rounds in
      let analytic = Q.to_float (Defender.Gain.defender_gain prof) in
      let within =
        E.check ctx
          ~label:(Printf.sprintf "T7 %s: simulation within 4 sigma" name)
          (Sim.Engine.agrees_with_analytic stats prof)
      in
      worst := max !worst (abs_float (analytic -. stats.Sim.Engine.mean_caught));
      Harness.Table.add_row table
        [
          name;
          string_of_int nu;
          string_of_int k;
          Printf.sprintf "%.4f" analytic;
          Printf.sprintf "%.4f" stats.Sim.Engine.mean_caught;
          Printf.sprintf "%.4f" (abs_float (analytic -. stats.Sim.Engine.mean_caught));
          yesno within;
        ])
    cases;
  E.out ctx (Harness.Table.to_string table);
  E.out ctx "\n";
  E.measure ctx "rounds" (E.Int rounds);
  E.measure ctx "max_abs_delta" (E.Float !worst)

(* A1 — ablation beyond the paper: how much of the NE defense's value
   comes from randomization?  Deterministic and naive baselines against a
   learning attacker. *)
let a1 ctx =
  let rounds = if E.is_smoke ctx then 3_000 else 25_000 in
  let rng = Prng.Rng.create 5150 in
  let g = Gen.enterprise rng ~core:5 ~leaves:12 ~uplinks:2 in
  let nu = 6 in
  (* Non-bipartite topology: fall back to the best bipartite subinstance
     is out of scope; use a grid instead when no partition exists. *)
  let g, note =
    match Defender.Matching_nash.find_partition g with
    | Some _ -> (g, "enterprise 5+12")
    | None -> (Gen.grid 3 5, "grid-3x5 (enterprise graph admits no k-matching NE)")
  in
  let k = 3 in
  let m = model ~g ~nu ~k in
  let prof = ok (Defender.Tuple_nash.a_tuple_auto m) in
  let attacker = Sim.Workload.Attacker_adaptive { epsilon = 0.1 } in
  let table =
    Harness.Table.create
      ~title:(Printf.sprintf "A1 (ablation): defenses vs adaptive attacker on %s" note)
      ~columns:[ "defense"; "mean caught/round"; "vs NE analytic" ]
  in
  let analytic = Q.to_float (Defender.Gain.defender_gain prof) in
  let tolerance = if E.is_smoke ctx then 0.2 else 0.05 in
  List.iteri
    (fun i defender ->
      let o =
        Sim.Workload.run (Prng.Rng.create 2222) m ~attacker ~defender ~rounds
      in
      let policy = Sim.Workload.policy_name defender in
      (* The NE schedule's floor property: even a learning attacker cannot
         push the fixed NE defense below its analytic gain. *)
      if i = 0 then
        ignore
          (E.check ctx
             ~label:(Printf.sprintf "A1 %s: holds the analytic floor" policy)
             (o.Sim.Workload.mean_caught >= analytic -. tolerance));
      E.measure ctx ("mean_caught_" ^ policy) (E.Float o.Sim.Workload.mean_caught);
      Harness.Table.add_row table
        [
          policy;
          Printf.sprintf "%.3f" o.Sim.Workload.mean_caught;
          Printf.sprintf "%+.3f" (o.Sim.Workload.mean_caught -. analytic);
        ])
    [
      Sim.Workload.Defender_fixed (Defender.Profile.tp_strategy prof);
      Sim.Workload.Defender_uniform_tuple;
      Sim.Workload.Defender_greedy { epsilon = 0.1 };
      Sim.Workload.Defender_round_robin;
    ];
  E.out ctx (Harness.Table.to_string table);
  E.outf ctx "A1 NE analytic floor: %.3f\n\n" analytic;
  E.measure ctx "analytic_floor" (E.Float analytic);
  E.measure ctx "rounds" (E.Int rounds)

(* T8 — extension: the max-min ("paranoid") defense vs the equilibrium
   defense.  Exact-LP fractional edge covers: on bipartite graphs
   rho* = rho = |IS| so the NE defense is max-min optimal; on
   non-bipartite graphs without matching NEs the LP still produces the
   optimal conservative schedule, strictly better than integral covers. *)
let t8 ctx =
  let table =
    Harness.Table.create
      ~title:"T8 (extension): max-min defense (exact LP) vs matching-NE defense, k = 1"
      ~columns:
        [ "graph"; "rho"; "rho* (LP)"; "max-min hit"; "NE hit floor 1/|IS|"; "relation" ]
  in
  List.iter
    (fun (name, g) ->
      let d = Defender.Minimax.solve g in
      let rho = Matching.Edge_cover.rho g in
      ignore
        (E.check ctx
           ~label:(Printf.sprintf "T8 %s: LP optimum certified" name)
           (Defender.Minimax.certified g d));
      let ne_floor =
        match Defender.Matching_nash.find_partition g with
        | Some p -> Some (List.length p.Defender.Matching_nash.is)
        | None -> None
      in
      let relation =
        match ne_floor with
        | Some is_size when Q.equal d.Defender.Minimax.value (Q.make 1 is_size) ->
            "NE defense is max-min optimal"
        | Some _ -> "NE weaker than max-min"
        | None ->
            if Q.( > ) d.Defender.Minimax.value (Q.make 1 rho) then
              "no matching NE; LP beats every integral cover"
            else "no matching NE"
      in
      (* when a matching NE exists, bipartiteness forces rho* = rho = |IS| *)
      (match ne_floor with
      | Some is_size ->
          ignore
            (E.check ctx
               ~label:(Printf.sprintf "T8 %s: NE defense is max-min optimal" name)
               (Q.equal d.Defender.Minimax.value (Q.make 1 is_size)))
      | None -> ());
      Harness.Table.add_row table
        [
          name;
          string_of_int rho;
          q_str d.Defender.Minimax.rho_star;
          q_str d.Defender.Minimax.value;
          (match ne_floor with
          | Some s -> q_str (Q.make 1 s)
          | None -> "-");
          relation;
        ])
    (small_atlas ());
  E.out ctx (Harness.Table.to_string table);
  E.out ctx "\n"

(* T9 — extension (Path model of [8]): the defender-power threshold for
   pure equilibria under path-constrained scans vs free tuples. *)
let t9 ctx =
  let table =
    Harness.Table.create
      ~title:"T9 (extension): pure-NE power thresholds, Tuple model vs Path model"
      ~columns:[ "graph"; "n"; "tuple model (rho)"; "path model (n-1 if traceable)" ]
  in
  List.iter
    (fun (name, g) ->
      if Graph.n g <= 22 then begin
        let rho, path_k = Defender.Path_model.pure_thresholds g in
        ignore
          (E.check ctx
             ~label:(Printf.sprintf "T9 %s: thresholds consistent" name)
             (rho >= 1
             && (match path_k with Some k -> k = Graph.n g - 1 | None -> true)));
        Harness.Table.add_row table
          [
            name;
            string_of_int (Graph.n g);
            string_of_int rho;
            (match path_k with
            | Some k -> string_of_int k
            | None -> "never (no Hamiltonian path)");
          ]
      end)
    (small_atlas ());
  E.out ctx (Harness.Table.to_string table);
  E.outf ctx
    "T9: constraining the defender to paths raises the pure-NE threshold from \
     rho(G) to n-1,\n\
     and only on traceable graphs — quantifying how much strategy-space freedom \
     is worth.\n\n"

(* T10 — extension: weighted attackers.  The k-matching NE survives any
   damage-weight vector and the gain law becomes IP_tp = k*W/|IS|. *)
let t10 ctx =
  let table =
    Harness.Table.create
      ~title:"T10 (extension): weighted attackers — arrested damage = k*W/|IS|"
      ~columns:[ "graph"; "k"; "weights"; "W"; "|IS|"; "arrested damage"; "verified" ]
  in
  let cases =
    [
      ("path-6", Gen.path 6, 2, [ Q.of_int 5; Q.one; Q.make 1 2 ]);
      ("star-6", Gen.star 6, 3, [ Q.of_int 10; Q.of_int 10 ]);
      ("grid-2x3", Gen.grid 2 3, 1, [ Q.one; Q.make 2 3; Q.make 1 3 ]);
      ("K(3,3)", Gen.complete_bipartite 3 3, 2, [ Q.of_int 7 ]);
      ("cycle-8", Gen.cycle 8, 3, [ Q.one; Q.of_int 2; Q.of_int 3; Q.of_int 4 ]);
    ]
  in
  List.iter
    (fun (name, g, k, weights) ->
      let m = model ~g ~nu:(List.length weights) ~k in
      let w = Defender.Weighted.make m ~weights in
      match Defender.Matching_nash.find_partition g with
      | None -> ()
      | Some p ->
          let prof = ok (Defender.Weighted.a_tuple w p) in
          let is_size = List.length p.Defender.Matching_nash.is in
          let damage = Defender.Weighted.expected_tp w prof in
          let predicted = Defender.Weighted.predicted_gain w ~is_size in
          let verified =
            E.check ctx
              ~label:(Printf.sprintf "T10 %s: NE verified, damage = k*W/|IS|" name)
              (Defender.Verify.verdict_is_confirmed (Defender.Weighted.verify_ne w prof)
              && Q.equal damage predicted)
          in
          Harness.Table.add_row table
            [
              name;
              string_of_int k;
              String.concat "," (List.map Q.to_string weights);
              q_str (Defender.Weighted.total_weight w);
              string_of_int is_size;
              q_str damage;
              yesno verified;
            ])
    cases;
  E.out ctx (Harness.Table.to_string table);
  E.out ctx "\n"

(* T11 — extension: selection-independence of the matching-NE gain.
   Derived invariant (proof in DESIGN.md): every admissible (IS,VC)
   partition has |IS| = alpha(G) = rho(G), so all matching NEs share the
   gain k*nu/rho, and they exist only on Koenig-Egervary graphs
   (tau = mu).  The table verifies all three identities empirically. *)
let t11 ctx =
  let table =
    Harness.Table.create
      ~title:
        "T11 (extension): matching-NE gain is selection-independent (|IS| = alpha = rho)"
      ~columns:
        [ "graph"; "#admissible"; "|IS| range"; "alpha"; "rho"; "tau=mu"; "invariant" ]
  in
  let violations = ref 0 in
  List.iter
    (fun (name, g) ->
      if Graph.n g <= 20 then begin
        let all = Defender.Matching_nash.all_partitions g in
        let alpha = Matching.Independent.independence_number g in
        let rho = Matching.Edge_cover.rho g in
        let mu = Matching.Blossom.matching_number g in
        let tau = Graph.n g - alpha in
        match all with
        | [] ->
            (* no matching NE: the graph must fail Koenig-Egervary *)
            ignore
              (E.check ctx
                 ~label:(Printf.sprintf "T11 %s: no partition => tau <> mu" name)
                 (tau <> mu));
            Harness.Table.add_row table
              [
                name; "0"; "-"; string_of_int alpha; string_of_int rho;
                yesno (tau = mu); "n/a (no matching NE)";
              ]
        | _ ->
            let sizes =
              List.map (fun p -> List.length p.Defender.Matching_nash.is) all
            in
            let lo = List.fold_left min (List.hd sizes) sizes in
            let hi = List.fold_left max (List.hd sizes) sizes in
            let invariant =
              E.check ctx
                ~label:(Printf.sprintf "T11 %s: |IS| = alpha = rho, tau = mu" name)
                (lo = hi && lo = alpha && alpha = rho && tau = mu)
            in
            if not invariant then incr violations;
            Harness.Table.add_row table
              [
                name;
                string_of_int (List.length all);
                Printf.sprintf "%d..%d" lo hi;
                string_of_int alpha;
                string_of_int rho;
                yesno (tau = mu);
                checkmark invariant;
              ]
      end)
    (small_atlas ());
  E.out ctx (Harness.Table.to_string table);
  E.outf ctx
    "T11 invariant violations: %d (theory: 0 — so equilibrium selection never \
     changes the gain)\n\n"
    !violations;
  E.measure ctx "violations" (E.Int !violations)

(* T12 — extension: symmetric-equilibrium census by support enumeration
   (exact indifference solves).  Finds equilibria the paper's
   constructions cannot: e.g. C5 has no matching NE, yet carries a unique
   full-support symmetric NE whose gain equals nu times the LP max-min
   value — the two extension layers agree. *)
let t12 ctx =
  let table =
    Harness.Table.create
      ~title:"T12 (extension): symmetric-NE census via support enumeration (k = 1, nu = 3)"
      ~columns:
        [ "graph"; "#NEs"; "gains"; "matching NE?"; "nu * max-min value" ]
  in
  let total_nes = ref 0 in
  let census name g =
    let nu = 3 in
    let m = model ~g ~nu ~k:1 in
    let candidates =
      List.init (Graph.m g) (fun id -> Defender.Tuple.of_list g [ id ])
    in
    let nes = Defender.Support_solver.search m ~candidate_tuples:candidates in
    let gains =
      List.sort_uniq Q.compare (List.map Defender.Gain.defender_gain nes)
    in
    let minimax = (Defender.Minimax.solve g).Defender.Minimax.value in
    total_nes := !total_nes + List.length nes;
    ignore
      (E.check ctx
         ~label:(Printf.sprintf "T12 %s: every gain = nu * max-min" name)
         (List.for_all (fun gain -> Q.equal gain (Q.mul_int minimax nu)) gains));
    Harness.Table.add_row table
      [
        name;
        string_of_int (List.length nes);
        String.concat " " (List.map Q.to_string gains);
        yesno (Defender.Matching_nash.find_partition g <> None);
        q_str (Q.mul_int minimax nu);
      ]
  in
  census "path-4" (Gen.path 4);
  census "cycle-4" (Gen.cycle 4);
  census "cycle-5" (Gen.cycle 5);
  census "star-5" (Gen.star 5);
  census "paw" (Graph.make ~n:4 [ (0, 1); (1, 2); (0, 2); (2, 3) ]);
  census "complete-4" (Gen.complete 4);
  census "diamond" (Graph.make ~n:4 [ (0, 1); (1, 2); (2, 3); (0, 3); (0, 2) ]);
  E.out ctx (Harness.Table.to_string table);
  E.outf ctx
    "T12: every equilibrium found has gain EXACTLY nu * max-min — consistent with \
     the game's\n\
     zero-sum structure forcing a unique equilibrium value.  complete-4 shows the \
     census's\n\
     square-support limitation: its equilibria need |S| <> |T| (underdetermined \
     indifference\n\
     systems), which the solver deliberately reports as ambiguous rather than \
     guessing.\n\n";
  E.measure ctx "equilibria_found" (E.Int !total_nes)

(* A2 — failure injection: a flaky scanner loses exactly the failed
   fraction of the equilibrium gain — graceful, linear degradation. *)
let a2 ctx =
  let rounds = if E.is_smoke ctx then 4_000 else 30_000 in
  let tolerance = if E.is_smoke ctx then 0.08 else 0.02 in
  let g = Gen.path 8 in
  let nu = 4 and k = 2 in
  let m = model ~g ~nu ~k in
  let prof = ok (Defender.Tuple_nash.a_tuple_auto m) in
  let analytic = Q.to_float (Defender.Gain.defender_gain prof) in
  let attacker = Sim.Workload.Attacker_fixed (Defender.Profile.vp_strategy prof 0) in
  let table =
    Harness.Table.create
      ~title:"A2 (failure injection): flaky NE scanner, gain vs outage rate"
      ~columns:[ "failure rate"; "measured gain"; "predicted (1-f)*gain"; "delta" ]
  in
  let worst = ref 0.0 in
  List.iter
    (fun f ->
      let base = Sim.Workload.Defender_fixed (Defender.Profile.tp_strategy prof) in
      let defender =
        if f = 0.0 then base
        else Sim.Workload.Defender_flaky { base; failure_rate = f }
      in
      let o =
        Sim.Workload.run (Prng.Rng.create 4321) m ~attacker ~defender ~rounds
      in
      let predicted = (1.0 -. f) *. analytic in
      let delta = o.Sim.Workload.mean_caught -. predicted in
      worst := max !worst (abs_float delta);
      ignore
        (E.check ctx
           ~label:(Printf.sprintf "A2 f=%.2f: linear degradation" f)
           (abs_float delta <= tolerance));
      Harness.Table.add_row table
        [
          Printf.sprintf "%.2f" f;
          Printf.sprintf "%.4f" o.Sim.Workload.mean_caught;
          Printf.sprintf "%.4f" predicted;
          Printf.sprintf "%+.4f" delta;
        ])
    [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5 ];
  E.out ctx (Harness.Table.to_string table);
  E.out ctx "\n";
  E.measure ctx "rounds" (E.Int rounds);
  E.measure ctx "max_abs_delta" (E.Float !worst)

(* T13 — numeric-tower scale sweep: the exact machinery keeps working at
   sizes where the seed's fixed-width rationals overflowed.  Two probes:

   (1) payoff tables whose entries are sums of reciprocals of primes near
       10^5 — the common denominator is the product of the primes, which
       clears max_int at four attackers, exactly where the seed raised
       Q.Overflow mid-table; the incremental kernel must still equal the
       naive oracle entry-for-entry and conserve total load = nu.

   (2) exact Hilbert solves: det(H_n) has an astronomically large
       denominator from n = 7 on, so Gaussian elimination promotes
       internally, yet the solution of H_n x = (row sums) demotes back to
       the all-ones vector.  The determinant is cross-checked against the
       closed form (prod k!)^4 / prod k!. *)

let t13_primes = [| 99991; 99989; 99971; 99961; 99929; 99923 |]

(* Partial-pivot determinant over Q, local to the experiment (Gauss.solve
   deliberately does not expose pivots). *)
let t13_det a =
  let n = Array.length a in
  let a = Array.map Array.copy a in
  let det = ref Q.one in
  (try
     for c = 0 to n - 1 do
       let p = ref (-1) in
       for r = c to n - 1 do
         if !p < 0 && not (Q.is_zero a.(r).(c)) then p := r
       done;
       if !p < 0 then begin
         det := Q.zero;
         raise Exit
       end;
       if !p <> c then begin
         let t = a.(c) in
         a.(c) <- a.(!p);
         a.(!p) <- t;
         det := Q.neg !det
       end;
       det := Q.mul !det a.(c).(c);
       for r = c + 1 to n - 1 do
         let f = Q.div a.(r).(c) a.(c).(c) in
         for cc = c to n - 1 do
           a.(r).(cc) <- Q.sub a.(r).(cc) (Q.mul f a.(c).(cc))
         done
       done
     done
   with Exit -> ());
  !det

(* prod_{k=1}^{upto} k! as an exact rational. *)
let t13_superfactorial upto =
  let acc = ref Q.one and fact = ref Q.one in
  for k = 1 to upto do
    fact := Q.mul_int !fact k;
    acc := Q.mul !acc !fact
  done;
  !acc

let t13_hilbert_det_closed n =
  let c = t13_superfactorial (n - 1) in
  Q.div (Q.mul (Q.mul c c) (Q.mul c c)) (t13_superfactorial ((2 * n) - 1))

let t13 ctx =
  let g = Gen.grid 3 4 in
  let n = Graph.n g in
  let k = 2 in
  let kernel_equals_naive prof =
    Seq.for_all
      (fun v ->
        Q.equal (Defender.Profile.hit_prob prof v)
          (Defender.Profile.hit_prob ~naive:true prof v)
        && Q.equal
             (Defender.Profile.expected_load prof v)
             (Defender.Profile.expected_load ~naive:true prof v))
      (Seq.init n Fun.id)
    && Seq.for_all
         (fun id ->
           Q.equal
             (Defender.Profile.expected_load_edge prof id)
             (Defender.Profile.expected_load_edge ~naive:true prof id))
         (Seq.init (Graph.m g) Fun.id)
  in
  let table1 =
    Harness.Table.create
      ~title:
        "T13a: payoff tables over prime reciprocals (denominator = product of \
         primes near 1e5)"
      ~columns:
        [ "nu"; "load(v0)"; "digits(den)"; "small rep"; "seed overflows";
          "kernel=naive"; "sum=nu" ]
  in
  let nus = if E.is_smoke ctx then [ 2; 4 ] else [ 2; 3; 4; 6 ] in
  List.iter
    (fun nu ->
      let m = model ~g ~nu ~k in
      let vp =
        List.init nu (fun i ->
            let p = t13_primes.(i) in
            Dist.Finite.make
              [ (0, Q.make 1 p); (1 + (i mod (n - 1)), Q.make (p - 1) p) ])
      in
      let tp =
        [
          (Defender.Tuple.of_list g [ 0; 1 ], Q.make 1 2);
          (Defender.Tuple.of_list g [ 2; 3 ], Q.make 1 2);
        ]
      in
      let prof = Defender.Profile.make_mixed m ~vp ~tp in
      let load0 = Defender.Profile.expected_load prof 0 in
      (* The seed raised at the first prefix sum of 1/p_i that leaves the
         63-bit range; a non-small prefix is a sufficient witness. *)
      let seed_overflows =
        let acc = ref Q.zero and hit = ref false in
        for i = 0 to nu - 1 do
          acc := Q.add !acc (Q.make 1 t13_primes.(i));
          if not (Q.is_small !acc) then hit := true
        done;
        !hit
      in
      let agree =
        E.check ctx
          ~label:(Printf.sprintf "T13a nu=%d: kernel = naive oracle" nu)
          (kernel_equals_naive prof)
      in
      let conserved =
        E.check ctx
          ~label:(Printf.sprintf "T13a nu=%d: total load = nu exactly" nu)
          (Q.equal
             (Q.sum
                (List.init n (fun v -> Defender.Profile.expected_load prof v)))
             (Q.of_int nu))
      in
      ignore
        (E.check ctx
           ~label:
             (Printf.sprintf
                "T13a nu=%d: load(v0) promoted iff a prefix overflowed" nu)
           (Bool.equal (not (Q.is_small load0)) seed_overflows));
      (* The incremental tables survive a deviation that demotes the
         entries back to the small representation. *)
      let deviated =
        Defender.Profile.replace_vp prof 0 (Dist.Finite.uniform [ 0; 1; 2 ])
      in
      ignore
        (E.check ctx
           ~label:(Printf.sprintf "T13a nu=%d: kernel = naive after replace_vp" nu)
           (kernel_equals_naive deviated));
      let den_digits =
        let s = Q.to_string load0 in
        match String.index_opt s '/' with
        | Some i -> String.length s - i - 1
        | None -> 1
      in
      Harness.Table.add_row table1
        [
          string_of_int nu;
          (if String.length (Q.to_string load0) <= 24 then Q.to_string load0
           else "(" ^ string_of_int (String.length (Q.to_string load0)) ^ " chars)");
          string_of_int den_digits;
          yesno (Q.is_small load0);
          yesno seed_overflows;
          checkmark agree;
          checkmark conserved;
        ])
    nus;
  E.out ctx (Harness.Table.to_string table1);
  E.outf ctx
    "T13a: the seed's fixed-width arithmetic raised Q.Overflow from nu = 4 \
     on; the tower promotes\n\
     those entries to big rationals and demotes them back after the \
     deviation.\n\n";
  let table2 =
    Harness.Table.create
      ~title:"T13b: exact Hilbert solves H_n x = rowsums (Gauss over the tower)"
      ~columns:
        [ "n"; "det fits 63-bit"; "digits(1/det)"; "det = closed form";
          "x = ones" ]
  in
  let sizes = if E.is_smoke ctx then [ 4; 8 ] else [ 4; 6; 8; 10; 12 ] in
  List.iter
    (fun hn ->
      let h =
        Array.init hn (fun i -> Array.init hn (fun j -> Q.make 1 (i + j + 1)))
      in
      let b = Array.map (fun row -> Q.sum (Array.to_list row)) h in
      let det = t13_det h in
      let det_ok =
        E.check ctx
          ~label:(Printf.sprintf "T13b n=%d: determinant = closed form" hn)
          (Q.equal det (t13_hilbert_det_closed hn))
      in
      let ones_ok =
        E.check ctx
          ~label:(Printf.sprintf "T13b n=%d: solution is the ones vector" hn)
          (match Lp.Gauss.solve ~a:h ~b with
          | Lp.Gauss.Unique xs -> Array.for_all (fun x -> Q.equal x Q.one) xs
          | Lp.Gauss.Underdetermined | Lp.Gauss.Inconsistent -> false)
      in
      let inv_det_digits =
        let s = Q.to_string det in
        match String.index_opt s '/' with
        | Some i -> String.length s - i - 1
        | None -> String.length s
      in
      Harness.Table.add_row table2
        [
          string_of_int hn;
          yesno (Q.is_small det);
          string_of_int inv_det_digits;
          checkmark det_ok;
          checkmark ones_ok;
        ];
      E.measure ctx
        (Printf.sprintf "hilbert_%d_inv_det_digits" hn)
        (E.Int inv_det_digits))
    sizes;
  E.out ctx (Harness.Table.to_string table2);
  E.outf ctx
    "T13b: from n = 7 the determinant's denominator exceeds 63 bits \
     (elimination promotes\n\
     internally), yet the solution demotes back to exact ones — the seed \
     raised Q.Overflow here.\n\n";
  E.measure ctx "prime_rows" (E.Int (List.length nus));
  E.measure ctx "hilbert_rows" (E.Int (List.length sizes))

let register () =
  let r ~id ~tag ~claim ~expected run =
    Harness.Registry.register
      { Harness.Experiment.id; tag; claim; expected; game = "tuple"; run }
  in
  r ~id:"T1" ~tag:Harness.Experiment.Table
    ~claim:
      "Thm 3.1 / Cor 3.2: Pi_k(G) has a pure NE iff G has an edge cover of \
       size k; decidable in P"
    ~expected:"polynomial decision = brute-force search on every instance" t1;
  r ~id:"T2" ~tag:Harness.Experiment.Table
    ~claim:"Cor 3.3: n >= 2k+1 implies no pure NE"
    ~expected:"no pure NE above the boundary on any family" t2;
  r ~id:"T3" ~tag:Harness.Experiment.Table
    ~claim:
      "Thm 3.4: mixed-NE characterization equivalent to the definitional \
       best-response check"
    ~expected:
      "every disagreement is a saturating-defender exception (IP_tp = nu); 0 \
       unexplained" t3;
  r ~id:"T4" ~tag:Harness.Experiment.Table
    ~claim:
      "Lemma 4.1 + Claim 4.9: A_tuple's cyclic lift yields delta = E/gcd(E,k) \
       tuples, each edge in k/gcd(E,k), and the result is an NE"
    ~expected:"claim-4.9 counts exact and every constructed profile verified" t4;
  r ~id:"T5" ~tag:Harness.Experiment.Table
    ~claim:"Thm 4.5: poly-time reduction k-matching <-> matching NE, both directions"
    ~expected:"round trips preserve supports; k > |IS| refused" t5;
  r ~id:"T6" ~tag:Harness.Experiment.Table
    ~claim:"Cors 4.7/4.10: IP_tp(k-NE) = k * IP_tp(1-NE) = k*nu/|IS|"
    ~expected:"ratio exactly k in exact arithmetic, no tolerance" t6;
  r ~id:"T7" ~tag:Harness.Experiment.Table
    ~claim:"Eqs (1)-(2): analytic expected profits match empirical play"
    ~expected:"Monte-Carlo mean within 4 sigma of the exact value" t7;
  r ~id:"T8" ~tag:Harness.Experiment.Extension
    ~claim:
      "extension (Minimax): max-min defense value = 1/rho*(G) by exact LP; \
       equals the NE floor 1/|IS| exactly when matching NEs exist"
    ~expected:"LP certified on every atlas graph; NE defense max-min optimal" t8;
  r ~id:"T9" ~tag:Harness.Experiment.Extension
    ~claim:
      "extension (Path model of [8]): path-constrained defender has pure NE \
       iff k = n-1 and G traceable"
    ~expected:"thresholds rho(G) vs n-1 across the atlas" t9;
  r ~id:"T10" ~tag:Harness.Experiment.Extension
    ~claim:
      "extension (weighted attackers): k-matching NE survives any damage \
       weights; arrested damage = k*W/|IS|"
    ~expected:"all instances verified exactly" t10;
  r ~id:"T11" ~tag:Harness.Experiment.Extension
    ~claim:
      "derived invariant: every admissible partition has |IS| = alpha = rho; \
       matching NEs exist iff G is Koenig-Egervary (tau = mu)"
    ~expected:"0 violations across the atlas" t11;
  r ~id:"T12" ~tag:Harness.Experiment.Extension
    ~claim:
      "extension (Support_solver): symmetric-NE census by exact indifference \
       solves over support pairs"
    ~expected:"every equilibrium found has gain exactly nu * (max-min value)" t12;
  r ~id:"A1" ~tag:Harness.Experiment.Extension
    ~claim:"ablation beyond the paper: value of NE randomization"
    ~expected:"the fixed NE defense holds its analytic floor vs an adaptive attacker"
    a1;
  r ~id:"T13" ~tag:Harness.Experiment.Extension
    ~claim:
      "numeric tower at scale: payoff tables and exact solves stay correct \
       where fixed-width rationals overflowed"
    ~expected:
      "kernel = naive and total load = nu over prime-product denominators \
       beyond 63 bits; Hilbert dets match the closed form and solutions \
       demote to exact ones"
    t13;
  r ~id:"A2" ~tag:Harness.Experiment.Extension
    ~claim:"failure injection: flaky scanner degrades linearly"
    ~expected:"measured gain within tolerance of (1-f) * k*nu/|IS| for every f" a2
