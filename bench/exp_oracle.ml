(* Experiment family D: the double-oracle equilibrium solver
   (Solver.Double_oracle) on tuple instances.  D1 is the agreement
   story: on Tier-1 matching instances the loop rediscovers the paper's
   characterization equilibria exactly — rational equality of values,
   zero oracle gap, and (warm-seeded) byte-identical profile text.  D2
   is the reach story: verified equilibria where no characterization
   applies, plus agreement with the Minimax LP at k=1 on arbitrary
   graphs.  D3 is the convergence story: per-iteration bound envelopes
   recorded through Sim.Convergence, with the do.* counter identities.

   Every check and measure here is deterministic in the instance, so
   the whole family rides the stripped-artifact byte-equality gates
   (sequential vs --jobs vs --pool) in @bench-smoke. *)

open Netgraph
open Exp_util
module E = Harness.Experiment
module DO = Solver.Instances.Tuple
module Q = Exact.Q

let verified mode prof =
  Defender.Verify.verdict_is_confirmed (Defender.Verify.mixed_ne mode prof)

(* D1 — rediscovery: on matching instances, nu * (double-oracle value)
   equals the characterization gain k*nu/|IS| as exact rationals, and
   the resulting profile is a verified NE in both Oracle and Exhaustive
   modes.  A warm-seeded run (restricted sets seeded with the
   characterization supports) must converge in ONE iteration to the
   byte-identical profile — recorded as a digest measure so the
   cross-worker artifact gates enforce it. *)
let d1 ctx =
  let cases =
    if E.is_smoke ctx then
      [ ("P6", Gen.path 6, 2, [ 1; 2 ]); ("C6", Gen.cycle 6, 3, [ 1; 2 ]) ]
    else
      [
        ("P6", Gen.path 6, 2, [ 1; 2; 3 ]);
        ("C6", Gen.cycle 6, 3, [ 1; 2; 3 ]);
        ("C8", Gen.cycle 8, 2, [ 1; 2; 3; 4 ]);
        ("K33", Gen.complete_bipartite 3 3, 2, [ 1; 2 ]);
        ("star 7", Gen.star 7, 3, [ 1 ]);
      ]
  in
  let table =
    Harness.Table.create ~title:"D1: double-oracle vs characterization"
      ~columns:
        [ "instance"; "k"; "iters"; "rows x cols"; "gain"; "char gain"; "NE" ]
  in
  let instances = ref 0 in
  List.iter
    (fun (name, g, nu, ks) ->
      List.iter
        (fun k ->
          incr instances;
          let m = model ~g ~nu ~k in
          let char =
            match Defender.Tuple_nash.a_tuple_auto m with
            | Ok p -> p
            | Error e ->
                failwith
                  (Printf.sprintf "%s k=%d: characterization failed: %s" name k
                     e)
          in
          let char_gain = Defender.Gain.defender_gain char in
          let r = DO.solve m in
          let gain = Q.mul_int r.DO.value nu in
          ignore
            (E.check ctx
               ~label:
                 (Printf.sprintf "D1 %s k=%d: nu*value = characterization gain"
                    name k)
               (Q.equal gain char_gain));
          let prof = DO.profile m r in
          let ne_ok =
            verified Defender.Verify.Oracle prof
            && verified (Defender.Verify.Exhaustive 200_000) prof
          in
          ignore
            (E.check ctx
               ~label:
                 (Printf.sprintf
                    "D1 %s k=%d: verified NE (oracle + exhaustive)" name k)
               ne_ok);
          Harness.Table.add_row table
            [
              name;
              string_of_int k;
              string_of_int r.DO.stats.DO.iterations;
              Printf.sprintf "%dx%d" r.DO.stats.DO.final_rows
                r.DO.stats.DO.final_cols;
              q_str gain;
              q_str char_gain;
              checkmark ne_ok;
            ])
        ks)
    cases;
  E.out ctx (Harness.Table.to_string table);
  (* Warm seeding: give the loop the characterization supports and it
     becomes a one-iteration checker whose output profile is
     byte-for-byte the characterization profile. *)
  let m = model ~g:(Gen.cycle 6) ~nu:3 ~k:1 in
  let char = ok (Defender.Tuple_nash.a_tuple_auto m) in
  let r =
    DO.solve m
      ~init_vertices:(Defender.Profile.vp_support char 0)
      ~init_strategies:(List.map fst (Defender.Profile.tp_strategy char))
  in
  ignore
    (E.check ctx ~label:"D1 warm seed C6 k=1: converges in one iteration"
       (r.DO.stats.DO.iterations = 1));
  let char_text = Defender.Profile_io.to_string char in
  let do_text = Defender.Profile_io.to_string (DO.profile m r) in
  ignore
    (E.check ctx
       ~label:"D1 warm seed C6 k=1: profile byte-identical to characterization"
       (String.equal char_text do_text));
  E.measure ctx "warm_profile_digest"
    (E.Str (Digest.to_hex (Digest.string do_text)));
  E.outf ctx "  warm-seeded C6 k=1 profile digest %s (1 iteration)\n\n"
    (Digest.to_hex (Digest.string do_text));
  E.measure ctx "instances" (E.Int !instances)

(* D2 — beyond the characterizations.  First the k=1 cross-check: on
   ANY graph the value is the max-min interception probability 1/rho*
   from the Minimax LP, matched here on non-matching-NE graphs.  Then
   instances where a_tuple_auto has NO answer at all: the loop still
   terminates with a zero oracle gap and an NE verified independently
   in both Oracle and Exhaustive modes. *)
let d2 ctx =
  let table =
    Harness.Table.create ~title:"D2: k=1 agreement with the minimax LP"
      ~columns:[ "graph"; "DO value"; "1/rho*"; "agree" ]
  in
  let k1_cases =
    if E.is_smoke ctx then [ ("C5", Gen.cycle 5); ("K4", Gen.complete 4) ]
    else
      [
        ("C5", Gen.cycle 5);
        ("K4", Gen.complete 4);
        ("petersen", Gen.petersen ());
        ("wheel 6", Gen.wheel 6);
        ("star 9", Gen.star 9);
      ]
  in
  List.iter
    (fun (name, g) ->
      let m = model ~g ~nu:2 ~k:1 in
      let r = DO.solve m in
      let mm = Defender.Minimax.solve g in
      let agree = Q.equal r.DO.value mm.Defender.Minimax.value in
      ignore
        (E.check ctx
           ~label:(Printf.sprintf "D2 %s: k=1 value = 1/rho*" name)
           agree);
      Harness.Table.add_row table
        [
          name;
          q_str r.DO.value;
          q_str mm.Defender.Minimax.value;
          checkmark agree;
        ])
    k1_cases;
  E.out ctx (Harness.Table.to_string table);
  let table2 =
    Harness.Table.create ~title:"D2: verified NEs with no closed form"
      ~columns:[ "instance"; "value"; "gain"; "|supp sigma|"; "|supp tp|"; "NE" ]
  in
  let hard_cases =
    if E.is_smoke ctx then
      [ ("C5 nu=2 k=2", Gen.cycle 5, 2, 2); ("wheel6 nu=2 k=2", Gen.wheel 6, 2, 2) ]
    else
      [
        ("C5 nu=2 k=2", Gen.cycle 5, 2, 2);
        ("wheel6 nu=2 k=2", Gen.wheel 6, 2, 2);
        ("petersen nu=3 k=2", Gen.petersen (), 3, 2);
        ("K4 nu=2 k=2", Gen.complete 4, 2, 2);
      ]
  in
  List.iter
    (fun (name, g, nu, k) ->
      let m = model ~g ~nu ~k in
      ignore
        (E.check ctx
           ~label:(Printf.sprintf "D2 %s: no characterization applies" name)
           (match Defender.Tuple_nash.a_tuple_auto m with
           | Error _ -> true
           | Ok _ -> false));
      let r = DO.solve m in
      let prof = DO.profile m r in
      let ne_ok =
        verified Defender.Verify.Oracle prof
        && verified (Defender.Verify.Exhaustive 200_000) prof
      in
      ignore
        (E.check ctx
           ~label:(Printf.sprintf "D2 %s: verified NE" name)
           ne_ok);
      E.measure ctx
        (Printf.sprintf "value_%s"
           (String.map (function ' ' -> '_' | c -> c) name))
        (E.Rat r.DO.value);
      Harness.Table.add_row table2
        [
          name;
          q_str r.DO.value;
          q_str (Q.mul_int r.DO.value nu);
          string_of_int (Dist.Finite.support_size r.DO.sigma);
          string_of_int (List.length r.DO.tp);
          checkmark ne_ok;
        ])
    hard_cases;
  E.out ctx (Harness.Table.to_string table2);
  E.measure ctx "k1_cases" (E.Int (List.length k1_cases))

(* D3 — convergence instrumentation.  The ?on_iteration hook feeds a
   Sim.Convergence recorder; the certified-bound envelope must be
   non-increasing, converge exactly (gap zero, in rationals) at the
   final iteration, and the counter identities oracle_calls = 2 *
   iterations and |trace| = iterations must hold.  The per-iteration
   bounds land in the artifact as a table (all exact strings). *)
let d3 ctx =
  let name, g, nu, k =
    if E.is_smoke ctx then ("C5 nu=2 k=2", Gen.cycle 5, 2, 2)
    else ("petersen nu=2 k=2", Gen.petersen (), 2, 2)
  in
  let m = model ~g ~nu ~k in
  let trace = Sim.Convergence.create () in
  let r =
    DO.solve m ~on_iteration:(fun it ->
        Sim.Convergence.record trace
          {
            Sim.Convergence.iteration = it.DO.iteration;
            value = it.DO.value;
            lower = it.DO.lower;
            upper = it.DO.upper;
          })
  in
  let table =
    Harness.Table.create
      ~title:(Printf.sprintf "D3: convergence trace on %s" name)
      ~columns:[ "iter"; "value"; "lower"; "upper"; "gap"; "envelope" ]
  in
  let env = Sim.Convergence.envelope trace in
  List.iter2
    (fun p e ->
      Harness.Table.add_row table
        [
          string_of_int p.Sim.Convergence.iteration;
          q_str p.Sim.Convergence.value;
          q_str p.Sim.Convergence.lower;
          q_str p.Sim.Convergence.upper;
          q_str (Q.sub p.Sim.Convergence.upper p.Sim.Convergence.lower);
          q_str e;
        ])
    (Sim.Convergence.points trace)
    env;
  E.out ctx (Harness.Table.to_string table);
  ignore
    (E.check ctx ~label:"D3: one trace point per iteration"
       (Sim.Convergence.length trace = r.DO.stats.DO.iterations));
  let non_increasing =
    let rec scan = function
      | a :: (b :: _ as rest) -> Q.( >= ) a b && scan rest
      | _ -> true
    in
    scan env
  in
  ignore (E.check ctx ~label:"D3: bound envelope non-increasing" non_increasing);
  ignore
    (E.check ctx ~label:"D3: converges exactly at the final iteration"
       (Sim.Convergence.converged_at trace = Some r.DO.stats.DO.iterations));
  ignore
    (E.check ctx ~label:"D3: final gap is exactly zero"
       (match Sim.Convergence.final trace with
       | Some p -> Q.equal p.Sim.Convergence.lower p.Sim.Convergence.upper
       | None -> false));
  ignore
    (E.check ctx ~label:"D3: oracle calls = 2 per iteration"
       (r.DO.stats.DO.oracle_calls = 2 * r.DO.stats.DO.iterations));
  E.measure ctx "do_iterations" (E.Int r.DO.stats.DO.iterations);
  E.measure ctx "do_oracle_calls" (E.Int r.DO.stats.DO.oracle_calls);
  E.measure ctx "do_warm_solves" (E.Int r.DO.stats.DO.warm_solves);
  E.measure ctx "do_support_size"
    (E.Int (Dist.Finite.support_size r.DO.sigma + List.length r.DO.tp));
  E.measure ctx "value" (E.Rat r.DO.value);
  E.outf ctx
    "  %s: %d iterations, %d oracle calls, %d warm restricted solves, final \
     restricted game %dx%d\n\n"
    name r.DO.stats.DO.iterations r.DO.stats.DO.oracle_calls
    r.DO.stats.DO.warm_solves r.DO.stats.DO.final_rows r.DO.stats.DO.final_cols

let register () =
  let r ~id ~claim ~expected run =
    Harness.Registry.register
      {
        Harness.Experiment.id;
        tag = Harness.Experiment.Extension;
        claim;
        expected;
        game = "tuple";
        run;
      }
  in
  r ~id:"D1"
    ~claim:
      "double-oracle rediscovers the matching-NE characterizations exactly"
    ~expected:
      "nu*value = k*nu/|IS| as exact rationals; warm-seeded run byte-identical"
    d1;
  r ~id:"D2"
    ~claim:"double-oracle reaches instances with no closed-form equilibrium"
    ~expected:"k=1 value = 1/rho*; verified NEs where a_tuple_auto fails" d2;
  r ~id:"D3"
    ~claim:"double-oracle converges with a monotone certified-bound envelope"
    ~expected:"envelope non-increasing, zero final gap, 2 oracle calls/iter" d3
