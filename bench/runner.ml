(* Driver logic shared by bench/main.exe and the CLI `experiments`
   subcommand: registration, selection (legacy group selectors and
   --only id lists), execution at either scale — sequentially, across
   --jobs forked workers, or on a persistent pre-forked worker pool
   (--pool), with an optional per-experiment --timeout —
   optional observability recording (--metrics counters, --trace span
   durations: a metrics object per experiment in the artifact and a
   summed table after the summary), JSON artifact emission (with a
   parse round-trip so a malformed artifact can never be written), and
   the exit-code policy (nonzero on any degraded or crashed verdict). *)

module E = Harness.Experiment
module R = Harness.Registry

let ensure_registered () =
  if R.all () = [] then begin
    Exp_tables.register ();
    Exp_figures.register ();
    Micro.register ();
    (* last: the S and G families land after the tuple experiments,
       keeping tuple artifact prefixes stable *)
    Exp_subgraph.register ();
    Exp_biggraph.register ();
    (* last again: the D family (double-oracle) postdates S and G *)
    Exp_oracle.register ()
  end

(* Legacy group selectors, mapped by id prefix: T*/A* are the table
   experiments, F* the figures, B* the microbenchmarks. *)
let group_prefixes = function
  | "tables" -> Some [ "T"; "A" ]
  | "figures" -> Some [ "F" ]
  | "micro" -> Some [ "B" ]
  | "subgraph" -> Some [ "S" ]
  | "biggraph" -> Some [ "G" ]
  | "oracle" -> Some [ "D" ]
  | "all" | "smoke" -> Some []
  | _ -> None

let in_group prefixes (e : E.t) =
  prefixes = []
  || List.exists
       (fun p -> String.length e.id >= 1 && String.sub e.id 0 1 = p)
       prefixes

let list_text () =
  ensure_registered ();
  let table =
    Harness.Table.create ~title:"registered experiments"
      ~columns:[ "id"; "tag"; "claim" ]
  in
  List.iter
    (fun (e : E.t) ->
      Harness.Table.add_row table [ e.id; E.tag_to_string e.tag; e.claim ])
    (R.all ());
  Harness.Table.to_string table

type opts = {
  scale : E.scale;
  only : string list;  (** experiment ids; [[]] = no id filter *)
  group : string;
      (** legacy selector:
          tables|figures|micro|subgraph|biggraph|oracle|smoke|all *)
  json_out : string option;
  echo : bool;
  force_degrade : string list;
      (** ids whose verdict is forced to Degraded after the run — a
          testing hook for the nonzero-exit path *)
  jobs : int;  (** worker processes; 1 = in-process sequential run *)
  timeout : float option;  (** per-experiment wall-clock budget, seconds *)
  force_crash : string list;
      (** ids whose worker is killed mid-run — the fault-injection hook
          for the crash-isolation path (implies forked workers) *)
  pool : bool;
      (** dispatch through the persistent pre-forked pool
          ({!Harness.Pool}) instead of fork-per-experiment *)
  metrics : bool;
      (** record Obs counters: a metrics object per experiment in the
          artifact, plus a summed table after the summary *)
  trace : bool;  (** additionally accumulate span wall time (implies metrics) *)
}

let default_opts =
  {
    scale = E.Full;
    only = [];
    group = "all";
    json_out = None;
    echo = true;
    force_degrade = [];
    jobs = 1;
    timeout = None;
    force_crash = [];
    pool = false;
    metrics = false;
    trace = false;
  }

(* Serialize, then parse what we are about to publish: an artifact that
   does not round-trip is a bug worth failing loudly on. *)
let render_json ~scale results =
  let text = Harness.Json.to_string ~pretty:true (R.report_json ~scale results) in
  match Harness.Json.of_string text with
  | Ok _ -> Ok text
  | Error e -> Error (Printf.sprintf "internal: JSON artifact does not parse: %s" e)

(* Run the selected experiments; returns the process exit code. *)
let run opts =
  ensure_registered ();
  let selected =
    match
      ( (if opts.only = [] then Ok (R.all ()) else R.select ~only:opts.only),
        group_prefixes opts.group )
    with
    | Error e, _ ->
        Printf.eprintf "error: %s\n" e;
        None
    | _, None ->
        Printf.eprintf
          "error: unknown selector %S (use \
           tables|figures|micro|subgraph|biggraph|oracle|smoke|all)\n"
          opts.group;
        None
    | Ok es, Some prefixes -> Some (List.filter (in_group prefixes) es)
  in
  match selected with
  | None -> 2
  | Some [] ->
      Printf.eprintf "error: selection matched no experiments (try --list)\n";
      2
  | Some experiments -> (
      let unknown_forced =
        List.filter (fun id -> R.find id = None)
          (opts.force_degrade @ opts.force_crash)
      in
      if unknown_forced <> [] then begin
        Printf.eprintf
          "error: --force-degrade/--force-crash: unknown experiment id(s): %s\n"
          (String.concat ", " unknown_forced);
        2
      end
      else if opts.jobs < 1 then begin
        Printf.eprintf "error: --jobs must be at least 1\n";
        2
      end
      else if (match opts.timeout with Some t -> t <= 0.0 | None -> false)
      then begin
        Printf.eprintf "error: --timeout must be positive\n";
        2
      end
      else
        let module Obs = Harness.Obs in
        let ambient = Obs.level () in
        if opts.trace then Obs.set_level Obs.Trace
        else if opts.metrics then Obs.set_level Obs.Counters;
        Fun.protect ~finally:(fun () -> Obs.set_level ambient) @@ fun () ->
        (* In forked mode the parent performs no experiment work, so its
           own delta is exactly the orchestration-side story (pool
           spawns, timeout kills, pipe bytes) — worth a table row.  In
           the in-process sequential run the same delta would merely
           double-count every experiment, so it is not collected. *)
        let forked =
          opts.pool || opts.jobs > 1 || opts.timeout <> None
          || opts.force_crash <> []
        in
        let driver_snap =
          if forked && Obs.recording () then Some (Obs.snapshot ()) else None
        in
        let echo = if opts.echo then print_string else fun _ -> () in
        let dispatch = if opts.pool then `Pool else `Fork in
        let results =
          R.run_parallel ~scale:opts.scale ~jobs:opts.jobs ?timeout:opts.timeout
            ~force_crash:opts.force_crash ~dispatch ~echo experiments
        in
        let driver =
          Option.map (fun snap -> E.metrics_of_obs (Obs.delta snap)) driver_snap
        in
        let results =
          if opts.force_degrade = [] then results
          else
            List.map
              (fun (r : E.result) ->
                if List.mem r.id opts.force_degrade then
                  E.degrade ~reason:"forced via --force-degrade (driver test hook)" r
                else r)
              results
        in
        match render_json ~scale:opts.scale results with
        | Error e ->
            Printf.eprintf "%s\n" e;
            3
        | Ok json_text ->
            (match opts.json_out with
            | None -> ()
            | Some path ->
                let oc = open_out path in
                output_string oc json_text;
                output_char oc '\n';
                close_out oc;
                if opts.echo then
                  Printf.printf "wrote %s (%d experiments)\n\n" path
                    (List.length results));
            if opts.echo then print_string (R.summary_table results);
            if opts.echo && (opts.metrics || opts.trace) then
              print_string (R.metrics_table ?driver results);
            let s = R.summarize results in
            if s.R.degraded > 0 || s.R.crashed > 0 then 1 else 0)
