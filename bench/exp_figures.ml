(* Figure experiments F1-F6: scaling and series claims, rendered as ASCII
   charts with fitted slopes/exponents.  Registered as Harness.Experiment
   descriptors: full-scale text is unchanged, wall-clock points land in
   the JSON artifact as timing stats, and the fitted slopes/exponents are
   recorded as measures with range checks (timing-sensitive checks run at
   full scale only — smoke boxes are too noisy to gate on). *)

open Netgraph
open Exp_util
module E = Harness.Experiment
module Q = Exact.Q

(* log-log exponent, guarded: smoke-scale timings can hit 0.0 ms, which
   Stats.power_law_exponent rejects. *)
let safe_exponent points =
  if List.for_all (fun (x, y) -> x > 0.0 && y > 0.0) points then
    Harness.Stats.power_law_exponent points
  else nan

(* F1 — Theorem 4.13: A_tuple runs in O(k*n).  Two series: time vs n at
   fixed k (expect linear, log-log exponent ~1) and time vs k at fixed n
   (the cyclic-lift step in isolation, where the O(k*n) term lives). *)
let f1 ctx =
  (* time vs n on stars: partition is leaves, |IS| = n-1, k fixed. *)
  let k = 8 in
  let ns =
    if E.is_smoke ctx then [ 100; 200; 400 ]
    else [ 200; 400; 800; 1600; 3200; 6400 ]
  in
  let repeat = if E.is_smoke ctx then 3 else 5 in
  let vs_n =
    List.map
      (fun n ->
        let g = Gen.star n in
        let m = model ~g ~nu:4 ~k in
        let p = Defender.Matching_nash.partition_of_is g (List.init (n - 1) (fun i -> i + 1)) in
        ignore (ok (Defender.Tuple_nash.a_tuple m p));
        Gc.full_major ();
        let st =
          Harness.Timer.time_stats ~repeat (fun () ->
              ignore (ok (Defender.Tuple_nash.a_tuple m p)))
        in
        E.record_timing ctx (Printf.sprintf "a_tuple_n%d" n) st;
        (float_of_int n, st.Harness.Timer.median *. 1e3))
      ns
  in
  (* time vs k at fixed n: the cyclic construction on a fixed edge list.
     The lift builds lcm(E_num, k) edge slots, so the O(k*n) worst case
     needs gcd(E_num, k) = 1: take E_num = 3989 (prime), making every k
     in the sweep coprime to it. *)
  let n = if E.is_smoke ctx then 500 else 3990 in
  let g = Gen.star n in
  let edges = List.init (n - 1) Fun.id in
  let ks = if E.is_smoke ctx then [ 2; 4; 8 ] else [ 2; 4; 8; 16; 32; 64 ] in
  let vs_k =
    List.map
      (fun k ->
        let st =
          Harness.Timer.time_stats ~repeat (fun () ->
              ignore (Defender.Tuple_nash.cyclic_tuples g edges ~k))
        in
        E.record_timing ctx (Printf.sprintf "cyclic_lift_k%d" k) st;
        (float_of_int k, st.Harness.Timer.median *. 1e3))
      ks
  in
  E.out ctx
    (Harness.Table.series ~title:"F1a: A_tuple wall time vs n (k = 8, star graphs)"
       ~x_label:"n" ~y_label:"ms" vs_n);
  let fit_n = Harness.Stats.linear_fit vs_n in
  let exponent_n = safe_exponent vs_n in
  E.outf ctx
    "F1a log-log exponent: %.3f; affine fit R^2 = %.4f (paper: linear in n)\n\n"
    exponent_n fit_n.Harness.Stats.r_squared;
  E.out ctx
    (Harness.Table.series ~title:"F1b: cyclic-lift wall time vs k (E_num = 3989, prime)"
       ~x_label:"k" ~y_label:"ms" vs_k);
  let fit_k = Harness.Stats.linear_fit vs_k in
  E.outf ctx
    "F1b affine fit: %.4f ms/k + %.4f ms, R^2 = %.4f (paper: O(k*n) — linear in k \
     with a\n    per-tuple constant term, delta = E_num tuples regardless of k \
     here)\n\n"
    fit_k.Harness.Stats.slope fit_k.Harness.Stats.intercept
    fit_k.Harness.Stats.r_squared;
  E.measure ctx "loglog_exponent_vs_n" (E.Float exponent_n);
  E.measure ctx "slope_ms_per_k" (E.Float fit_k.Harness.Stats.slope);
  if not (E.is_smoke ctx) then begin
    (* timing checks are meaningful only at full scale *)
    ignore
      (E.check ctx ~label:"F1a: exponent consistent with linear growth"
         (exponent_n >= 0.5 && exponent_n <= 1.6));
    ignore
      (E.check ctx ~label:"F1b: time increases with k"
         (fit_k.Harness.Stats.slope > 0.0))
  end

(* F2 — Theorem 5.1: the bipartite pipeline is polynomial,
   max{O(kn), O(m sqrt n)}.  Time vs n on random bipartite graphs of
   constant average degree. *)
let f2 ctx =
  let rng = Prng.Rng.create 808 in
  let sizes =
    if E.is_smoke ctx then [ 100; 200 ] else [ 200; 400; 800; 1600; 3200 ]
  in
  let repeat = if E.is_smoke ctx then 3 else 5 in
  let series =
    List.map
      (fun half ->
        let g = Gen.random_bipartite rng ~a:half ~b:half ~p:(8.0 /. float_of_int half) in
        let feasible = Defender.Pipeline.max_feasible_k g in
        let k = max 1 (min 6 feasible) in
        let m = model ~g ~nu:4 ~k in
        (* settle the heap and warm caches so the median measures the
           algorithm, not the first major GC cycle *)
        ignore (ok (Defender.Pipeline.solve m));
        Gc.full_major ();
        let st =
          Harness.Timer.time_stats ~repeat (fun () ->
              ignore (ok (Defender.Pipeline.solve m)))
        in
        E.record_timing ctx (Printf.sprintf "pipeline_n%d" (Graph.n g)) st;
        (float_of_int (Graph.n g), st.Harness.Timer.median *. 1e3))
      sizes
  in
  let exponent = safe_exponent series in
  E.out ctx
    (Harness.Table.series
       ~title:"F2: bipartite pipeline wall time vs n (random bipartite, ~8 avg degree)"
       ~x_label:"n" ~y_label:"ms" series);
  E.outf ctx
    "F2 log-log exponent: %.3f (paper bound max{O(kn), O(m sqrt n)}: anything in \
     ~[1.0, 1.5]\n    is consistent — Hopcroft-Karp rarely exhibits its sqrt(n) \
     phase count on random inputs)\n\n"
    exponent;
  E.measure ctx "loglog_exponent" (E.Float exponent);
  if not (E.is_smoke ctx) then
    ignore
      (E.check ctx ~label:"F2: exponent consistent with the polynomial bound"
         (exponent >= 0.5 && exponent <= 2.0))

(* F3 — the headline: defender gain linear in k, slope nu/|IS|, on several
   topologies; analytic (exact) and simulated series coincide. *)
let f3 ctx =
  let nu = 6 in
  let sim_rounds = if E.is_smoke ctx then 2_000 else 8_000 in
  let topologies =
    [
      ("path-10", Gen.path 10);
      ("cycle-12", Gen.cycle 12);
      ("star-9", Gen.star 9);
      ("grid-3x4", Gen.grid 3 4);
      ("K(4,5)", Gen.complete_bipartite 4 5);
    ]
  in
  let named_series =
    List.filter_map
      (fun (name, g) ->
        match Defender.Matching_nash.solve_auto (model ~g ~nu ~k:1) with
        | Error _ -> None
        | Ok edge_prof ->
            let is_size = List.length (Defender.Profile.vp_support_union edge_prof) in
            let points =
              List.init is_size (fun i ->
                  let k = i + 1 in
                  let lifted = ok (Defender.Reduction.edge_to_tuple ~k edge_prof) in
                  (float_of_int k, Q.to_float (Defender.Gain.defender_gain lifted)))
            in
            Some (name, is_size, points))
      topologies
  in
  E.out ctx
    (Harness.Table.multi_series ~title:"F3: the power of the defender — gain vs k"
       ~x_label:"k (links scanned)" ~y_label:"expected attackers arrested"
       (List.map (fun (n, _, p) -> (n, p)) named_series));
  List.iter
    (fun (name, is_size, points) ->
      if List.length points >= 2 then begin
        let fit = Harness.Stats.linear_fit points in
        let predicted = float_of_int nu /. float_of_int is_size in
        ignore
          (E.check ctx
             ~label:(Printf.sprintf "F3 %s: gain linear in k, slope nu/|IS|" name)
             (Harness.Stats.is_linear points
             && abs_float (fit.Harness.Stats.slope -. predicted) < 1e-9));
        E.measure ctx ("slope_" ^ name) (E.Float fit.Harness.Stats.slope);
        E.outf ctx
          "  %-10s slope %.4f (predicted nu/|IS| = %.4f), R^2 = %.9f, linear: %s\n"
          name fit.Harness.Stats.slope predicted
          fit.Harness.Stats.r_squared
          (yesno (Harness.Stats.is_linear points))
      end)
    named_series;
  (* one simulated series to show the empirical curve lies on the line *)
  (match named_series with
  | (name, _, _) :: _ ->
      let g = List.assoc name topologies in
      let edge_prof = ok (Defender.Matching_nash.solve_auto (model ~g ~nu ~k:1)) in
      let is_size = List.length (Defender.Profile.vp_support_union edge_prof) in
      let simulated =
        List.init is_size (fun i ->
            let k = i + 1 in
            let lifted = ok (Defender.Reduction.edge_to_tuple ~k edge_prof) in
            let stats =
              Sim.Engine.play (Prng.Rng.create (k * 17)) lifted ~rounds:sim_rounds
            in
            (float_of_int k, stats.Sim.Engine.mean_caught))
      in
      let fit = Harness.Stats.linear_fit simulated in
      if not (E.is_smoke ctx) then
        ignore
          (E.check ctx
             ~label:(Printf.sprintf "F3 %s: simulated series lies on the line" name)
             (fit.Harness.Stats.r_squared > 0.999));
      E.measure ctx "simulated_r_squared" (E.Float fit.Harness.Stats.r_squared);
      E.outf ctx
        "  %-10s SIMULATED slope %.4f, R^2 = %.6f (sampling noise only)\n" name
        fit.Harness.Stats.slope fit.Harness.Stats.r_squared
  | [] -> ());
  E.out ctx "\n";
  E.measure ctx "sim_rounds" (E.Int sim_rounds)

(* F4 — flip side of Theorem 3.1: the class of graphs admitting pure NE
   grows with k.  Fraction of connected G(n,p) samples with rho(G) <= k. *)
let f4 ctx =
  let rng = Prng.Rng.create 246 in
  let n = 14 in
  let samples = if E.is_smoke ctx then 60 else 300 in
  let graphs =
    List.init samples (fun _ -> Gen.gnp_connected rng ~n ~p:0.25)
  in
  let rhos = List.map Matching.Edge_cover.rho graphs in
  let points =
    List.map
      (fun k ->
        let admitting = List.length (List.filter (fun r -> r <= k) rhos) in
        (float_of_int k, float_of_int admitting /. float_of_int samples))
      [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
  in
  E.out ctx
    (Harness.Table.series
       ~title:
         (Printf.sprintf
            "F4: fraction of connected G(%d, 0.25) samples admitting a pure NE vs k"
            n)
       ~x_label:"k" ~y_label:"fraction with rho <= k" points);
  let monotone =
    let rec check = function
      | (_, a) :: ((_, b) :: _ as rest) -> a <= b && check rest
      | _ -> true
    in
    check points
  in
  ignore (E.check ctx ~label:"F4: fraction monotone non-decreasing in k" monotone);
  ignore
    (E.check ctx ~label:"F4: all samples admit a pure NE by k = 9"
       (match List.rev points with (_, last) :: _ -> last = 1.0 | [] -> false));
  E.outf ctx
    "F4 monotone non-decreasing in k: %s; jumps from 0 to 1 across k = n/2 = %d\n\n"
    (yesno monotone) (n / 2);
  E.measure ctx "samples" (E.Int samples)

(* F5 — extension: equilibrium robustness.  Tilt the NE defender toward
   one tuple of its support by epsilon and measure the exact max regret:
   it grows linearly, so small schedule drift costs proportionally little
   (the equilibrium is not a knife edge). *)
let f5 ctx =
  let g = Gen.path 8 in
  let m = model ~g ~nu:4 ~k:2 in
  let prof = ok (Defender.Tuple_nash.a_tuple_auto m) in
  let towards = List.hd (Defender.Profile.tp_support prof) in
  let points =
    List.map
      (fun i ->
        let eps = Q.make i 20 in
        let tilted = Defender.Robustness.tilt_tp prof ~epsilon:eps ~towards in
        let r = Defender.Robustness.max_regret (Defender.Robustness.regret tilted) in
        (Q.to_float eps, Q.to_float r))
      [ 0; 1; 2; 3; 4; 5; 6; 8; 10 ]
  in
  E.out ctx
    (Harness.Table.series
       ~title:"F5 (extension): exact max regret vs defender-schedule tilt epsilon"
       ~x_label:"epsilon" ~y_label:"max regret" points);
  let fit = Harness.Stats.linear_fit points in
  ignore
    (E.check ctx ~label:"F5: regret exactly linear in eps, zero at eps = 0"
       (abs_float (fit.Harness.Stats.slope -. 0.5) < 1e-9
       && abs_float fit.Harness.Stats.intercept < 1e-9
       && fit.Harness.Stats.r_squared > 1.0 -. 1e-9));
  E.measure ctx "regret_slope" (E.Float fit.Harness.Stats.slope);
  E.outf ctx
    "F5 linear fit: regret = %.4f*eps %+.4f, R^2 = %.6f (exactly linear, zero at \
     eps = 0)\n\n"
    fit.Harness.Stats.slope fit.Harness.Stats.intercept fit.Harness.Stats.r_squared

(* F6 — extension: fictitious play converges to the equilibrium gain on
   instances WITH a k-matching NE, and to the LP max-min value on
   instances WITHOUT one — learning dynamics recover both theories. *)
let f6 ctx =
  let rounds = if E.is_smoke ctx then 4_000 else 30_000 in
  let tolerance_pct = if E.is_smoke ctx then 15.0 else 1.0 in
  let run name modelv expected =
    let r = Sim.Fictitious.run (Prng.Rng.create 5) modelv ~rounds in
    let series =
      List.filter_map
        (fun i ->
          let idx = (i * r.Sim.Fictitious.rounds / 12) - 1 in
          if idx >= 1 then
            Some (float_of_int (idx + 1), r.Sim.Fictitious.gain_series.(idx))
          else None)
        (List.init 13 Fun.id)
    in
    (name, expected, r.Sim.Fictitious.tail_avg_gain, series)
  in
  let p6 = run "P6 nu=4 k=2 (NE value 8/3)"
      (model ~g:(Gen.path 6) ~nu:4 ~k:2)
      (8.0 /. 3.0)
  in
  let c5 = run "C5 nu=3 k=1 (max-min value 6/5)"
      (model ~g:(Gen.cycle 5) ~nu:3 ~k:1)
      1.2
  in
  let named = List.map (fun (n, _, _, s) -> (n, s)) [ p6; c5 ] in
  E.out ctx
    (Harness.Table.multi_series
       ~title:"F6 (extension): fictitious play — prefix-average defender gain"
       ~x_label:"round" ~y_label:"average gain" named);
  List.iter
    (fun (name, expected, tail, _) ->
      let err_pct = 100.0 *. abs_float (tail -. expected) /. expected in
      ignore
        (E.check ctx
           ~label:(Printf.sprintf "F6 %s: tail average converges" name)
           (err_pct <= tolerance_pct));
      E.measure ctx
        (Printf.sprintf "tail_error_pct_%s" (String.sub name 0 2))
        (E.Float err_pct);
      E.outf ctx "  %-32s tail average %.4f vs predicted %.4f (error %.2f%%)\n"
        name tail expected err_pct)
    [ p6; c5 ];
  E.out ctx "\n";
  E.measure ctx "rounds" (E.Int rounds)

let register () =
  let r ~id ~claim ~expected run =
    Harness.Registry.register
      {
        Harness.Experiment.id;
        tag = Harness.Experiment.Figure;
        claim;
        expected;
        game = "tuple";
        run;
      }
  in
  r ~id:"F1"
    ~claim:"Thm 4.13: A_tuple runs in O(k*n)"
    ~expected:"wall time linear in n at fixed k and linear in k at fixed n" f1;
  r ~id:"F2"
    ~claim:"Thm 5.1: bipartite pipeline polynomial, max{O(kn), O(m sqrt n)}"
    ~expected:"log-log exponent in ~[1.0, 1.5] on random bipartite graphs" f2;
  r ~id:"F3"
    ~claim:"headline: defender gain linear in k with slope nu/|IS|"
    ~expected:"analytic series exactly linear; simulated series on the line" f3;
  r ~id:"F4"
    ~claim:"flip side of Thm 3.1: the class of graphs with pure NE grows with k"
    ~expected:"fraction admitting pure NE monotone in k, reaching 1" f4;
  r ~id:"F5"
    ~claim:"extension (Robustness): max regret linear in schedule tilt epsilon"
    ~expected:"regret = 0.5*eps exactly on P8 (nu = 4, k = 2), R^2 = 1" f5;
  r ~id:"F6"
    ~claim:
      "extension (Fictitious): learning recovers the NE gain (P6) and the \
       max-min value (C5)"
    ~expected:"tail averages within tolerance of 8/3 and 6/5" f6
