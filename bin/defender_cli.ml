(* Command-line interface to the defender library.

   Subcommands:
     gen       generate a graph and print/save it as an edge list
     analyze   structural + equilibrium-relevant analysis of a graph
     pure      decide/construct pure Nash equilibria (Theorem 3.1)
     solve     compute a k-matching Nash equilibrium (Algorithm A_tuple)
     simulate  Monte-Carlo play of the computed equilibrium
     dynamics  best-response dynamics until convergence or budget

     verify    re-verify a saved equilibrium profile
     minimax   optimal max-min single-link defense (exact LP)
     paths     pure-NE thresholds for the path-constrained defender
     fp        fictitious-play learning dynamics
     census    enumerate symmetric equilibria of a tiny instance
     experiments  run registered EXPERIMENTS.md experiments (same
                  registry as bench/main.exe; JSON artifacts)

   Graphs are specified either with --file (edge-list format) or --family
   using a compact spec (see Netgraph.Family): path:6, cycle:8, star:5,
   complete:4, kbip:3x4, grid:3x4, hypercube:3, wheel:6, petersen,
   barbell:4:2, lollipop:4:3, caterpillar:4:2, multipartite:2:2:2,
   tree:12, gnp:20:0.1, bipartite:5x7:0.2, regular:10:4,
   enterprise:4:20:2. *)

open Cmdliner

let parse_family spec seed =
  Netgraph.Family.parse ~rng:(Prng.Rng.create seed) spec

let load_graph file family seed =
  match (file, family) with
  | Some f, None -> Netgraph.Edge_list.load f
  | None, Some spec -> parse_family spec seed
  | Some _, Some _ -> failwith "give either --file or --family, not both"
  | None, None -> failwith "a graph is required: --file or --family"

(* Common options *)
let file_arg =
  Arg.(value & opt (some string) None & info [ "file"; "f" ] ~docv:"FILE" ~doc:"Edge-list file.")

let family_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "family"; "g" ] ~docv:"SPEC" ~doc:"Generator spec, e.g. grid:3x4 or gnp:20:0.1.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let k_arg =
  Arg.(value & opt int 1 & info [ "k" ] ~docv:"K" ~doc:"Defender power (links scanned).")

let nu_arg =
  Arg.(value & opt int 1 & info [ "nu" ] ~docv:"NU" ~doc:"Number of attackers.")

(* GAME instance selection, on the subcommands whose engine is
   functorized over it (fp, dynamics).  The tuple game reads --k; the
   connected-subgraph game reads --lambda. *)
let game_arg =
  Arg.(
    value
    & opt (enum [ ("tuple", `Tuple); ("subgraph", `Subgraph) ]) `Tuple
    & info [ "game" ] ~docv:"GAME"
        ~doc:"Game instance: $(b,tuple) (k edges) or $(b,subgraph) (a \
              lambda-vertex connected subgraph).")

let lambda_arg =
  Arg.(
    value & opt int 1
    & info [ "lambda" ] ~docv:"LAMBDA"
        ~doc:"Defender subgraph size (subgraph game only).")

(* Every subcommand body runs under this wrapper.  The typed errors our
   own layers raise — Invalid_argument (malformed graph6/profile input,
   bad parameters), Failure (parsers, option validation), Sys_error
   (missing or unreadable files) — are user-input problems, not bugs:
   they print as one [error: ...] line on stderr and exit 1, never as an
   uncaught-exception backtrace. *)
let handle f =
  let die msg =
    Printf.eprintf "error: %s\n" msg;
    exit 1
  in
  try `Ok (f ())
  with
  | Invalid_argument msg | Failure msg | Sys_error msg -> die msg
  | Unix.Unix_error (e, fn, arg) ->
      die
        (Printf.sprintf "%s%s: %s" fn
           (if arg = "" then "" else " " ^ arg)
           (Unix.error_message e))

(* Observability flags, shared by the compute-heavy subcommands: run the
   body with recording on and print the summed counter/span tables
   afterwards.  The experiments subcommand instead threads the flags
   through Runner.opts so the artifact carries per-experiment metrics. *)
let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Record observability counters and print the summed table.")

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Additionally accumulate span wall time (implies $(b,--metrics)).")

let with_obs ~metrics ~trace f =
  let module Obs = Harness.Obs in
  if not (metrics || trace) then f ()
  else begin
    let ambient = Obs.level () in
    Obs.set_level (if trace then Obs.Trace else Obs.Counters);
    Fun.protect ~finally:(fun () -> Obs.set_level ambient) @@ fun () ->
    let snap = Obs.snapshot () in
    let result = f () in
    let d = Obs.delta snap in
    if not (Obs.is_empty d) then
      print_string
        (Harness.Registry.metrics_table
           ~driver:(Harness.Experiment.metrics_of_obs d) []);
    result
  end

(* gen *)
let gen_cmd =
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output file.")
  in
  let run family seed out =
    handle (fun () ->
        let g =
          match family with
          | Some spec -> parse_family spec seed
          | None -> failwith "gen requires --family"
        in
        match out with
        | Some f ->
            Netgraph.Edge_list.save f g;
            Printf.printf "wrote %s (n=%d, m=%d)\n" f (Netgraph.Graph.n g)
              (Netgraph.Graph.m g)
        | None -> print_string (Netgraph.Edge_list.to_string g))
  in
  Cmd.v (Cmd.info "gen" ~doc:"Generate a graph.")
    Term.(ret (const run $ family_arg $ seed_arg $ out_arg))

(* analyze *)
let analyze_cmd =
  let run file family seed =
    handle (fun () ->
        let g = load_graph file family seed in
        Format.printf "%a@." Netgraph.Props.pp_summary (Netgraph.Props.summary g);
        if Netgraph.Traverse.is_connected g then begin
          Printf.printf "diameter %d, radius %d, girth %s\n"
            (Netgraph.Metrics.diameter g) (Netgraph.Metrics.radius g)
            (match Netgraph.Metrics.girth g with
            | Some c -> string_of_int c
            | None -> "none (forest)");
          Printf.printf "articulation points: %d, bridges: %d\n"
            (List.length (Netgraph.Metrics.articulation_points g))
            (List.length (Netgraph.Metrics.bridges g))
        end;
        Printf.printf "minimum edge cover rho(G) = %d (pure NE exists iff k >= rho)\n"
          (Matching.Edge_cover.rho g);
        Printf.printf "maximum matching mu(G) = %d\n"
          (Matching.Blossom.matching_number g);
        (match Defender.Matching_nash.find_partition g with
        | Some p ->
            let is_size = List.length p.Defender.Matching_nash.is in
            Printf.printf
              "admissible (IS, VC) partition found: |IS| = %d, |VC| = %d\n\
               matching NE exist; k-matching NE exist for every k in [1, %d]\n"
              is_size
              (List.length p.Defender.Matching_nash.vc)
              is_size
        | None ->
            print_endline
              "no admissible (IS, VC) partition: no matching/k-matching NE \
               (Theorem 2.2 / Corollary 4.11)");
        let d = Defender.Minimax.solve g in
        Printf.printf
          "max-min defense (k = 1): interception %s (fractional edge cover rho* = %s)\n"
          (Exact.Q.to_string d.Defender.Minimax.value)
          (Exact.Q.to_string d.Defender.Minimax.rho_star))
  in
  Cmd.v (Cmd.info "analyze" ~doc:"Analyze a graph's equilibrium structure.")
    Term.(ret (const run $ file_arg $ family_arg $ seed_arg))

(* minimax *)
let minimax_cmd =
  let run file family seed =
    handle (fun () ->
        let g = load_graph file family seed in
        let d = Defender.Minimax.solve g in
        Printf.printf "fractional edge-cover number rho* = %s\n"
          (Exact.Q.to_string d.Defender.Minimax.rho_star);
        Printf.printf "max-min interception probability = %s (certified %b)\n"
          (Exact.Q.to_string d.Defender.Minimax.value)
          (Defender.Minimax.certified g d);
        print_endline "optimal scan marginals (nonzero):";
        Array.iteri
          (fun id p ->
            if not (Exact.Q.is_zero p) then
              let e = Netgraph.Graph.edge g id in
              Printf.printf "  link %d-%d: %s\n" e.Netgraph.Graph.u
                e.Netgraph.Graph.v (Exact.Q.to_string p))
          d.Defender.Minimax.marginals)
  in
  Cmd.v
    (Cmd.info "minimax"
       ~doc:"Optimal max-min (paranoid) single-link defense, exact LP.")
    Term.(ret (const run $ file_arg $ family_arg $ seed_arg))

(* paths *)
let paths_cmd =
  let run file family seed =
    handle (fun () ->
        let g = load_graph file family seed in
        let rho, path_k = Defender.Path_model.pure_thresholds g in
        Printf.printf "Tuple model: pure NE exists iff k >= rho(G) = %d\n" rho;
        match path_k with
        | Some k ->
            Printf.printf
              "Path model: pure NE exists iff k = n-1 = %d (graph is traceable)\n" k
        | None ->
            print_endline
              "Path model: no pure NE for any k (no Hamiltonian path)")
  in
  Cmd.v
    (Cmd.info "paths"
       ~doc:"Pure-NE thresholds when the defender is constrained to paths.")
    Term.(ret (const run $ file_arg $ family_arg $ seed_arg))

(* census: symmetric-NE enumeration on tiny graphs *)
let census_cmd =
  let run file family seed nu k =
    handle (fun () ->
        let g = load_graph file family seed in
        let m = Defender.Model.make ~graph:g ~nu ~k in
        let candidates =
          if k = 1 then
            List.init (Netgraph.Graph.m g) (fun id -> Defender.Tuple.of_list g [ id ])
          else Defender.Tuple.enumerate ~limit:10 g ~k
        in
        let nes = Defender.Support_solver.search m ~candidate_tuples:candidates in
        Printf.printf "%d symmetric equilibria found\n" (List.length nes);
        List.iter
          (fun p ->
            Format.printf "%a@.gain: %s@.@." Defender.Profile.pp p
              (Exact.Q.to_string (Defender.Gain.defender_gain p)))
          nes)
  in
  Cmd.v
    (Cmd.info "census"
       ~doc:"Enumerate symmetric Nash equilibria of a tiny instance by support \
             enumeration.")
    Term.(ret (const run $ file_arg $ family_arg $ seed_arg $ nu_arg $ k_arg))

(* fp: fictitious play *)
let fp_cmd =
  let rounds_arg =
    Arg.(value & opt int 20_000 & info [ "rounds" ] ~docv:"N" ~doc:"Play rounds.")
  in
  let run file family seed nu k game lambda rounds metrics trace =
    handle (fun () ->
        with_obs ~metrics ~trace @@ fun () ->
        let g = load_graph file family seed in
        match game with
        | `Tuple ->
            let m = Defender.Model.make ~graph:g ~nu ~k in
            let r = Sim.Fictitious.run (Prng.Rng.create seed) m ~rounds in
            Printf.printf
              "fictitious play over %d rounds: average gain %.4f (tail %.4f)\n"
              rounds r.Sim.Fictitious.avg_gain r.Sim.Fictitious.tail_avg_gain;
            (match Defender.Tuple_nash.a_tuple_auto m with
            | Ok prof ->
                Printf.printf "k-matching NE prediction: %s\n"
                  (Exact.Q.to_string (Defender.Gain.defender_gain prof))
            | Error _ -> ());
            if k = 1 then
              let d = Defender.Minimax.solve g in
              Printf.printf "max-min prediction: nu * %s = %.4f\n"
                (Exact.Q.to_string d.Defender.Minimax.value)
                (Exact.Q.to_float (Exact.Q.mul_int d.Defender.Minimax.value nu))
        | `Subgraph ->
            let module F = Sim.Sim_instance.Subgraph.Fictitious in
            let inst = Defender.Subgraph_game.make ~graph:g ~nu ~lambda in
            let r = F.run (Prng.Rng.create seed) inst ~rounds in
            Printf.printf
              "fictitious play (subgraph game, lambda = %d) over %d rounds: \
               average gain %.4f (tail %.4f)\n"
              lambda rounds r.F.avg_gain r.F.tail_avg_gain)
  in
  Cmd.v (Cmd.info "fp" ~doc:"Fictitious-play learning dynamics.")
    Term.(
      ret
        (const run $ file_arg $ family_arg $ seed_arg $ nu_arg $ k_arg $ game_arg
       $ lambda_arg $ rounds_arg $ metrics_arg $ trace_arg))

(* pure *)
let pure_cmd =
  let run file family seed nu k =
    handle (fun () ->
        let g = load_graph file family seed in
        let m = Defender.Model.make ~graph:g ~nu ~k in
        if Defender.Pure_nash.exists m then begin
          match Defender.Pure_nash.construct m with
          | Some prof ->
              Printf.printf
                "pure NE exists (Theorem 3.1); defender cover: edges {%s}\n"
                (String.concat ","
                   (List.map string_of_int
                      (Defender.Tuple.to_list prof.Defender.Profile.tp_choice)))
          | None -> assert false
        end
        else
          Printf.printf
            "no pure NE: rho(G) = %d > k = %d%s\n"
            (Matching.Edge_cover.rho g) k
            (if Defender.Pure_nash.cor33_applies m then
               " (also forced by Corollary 3.3: n >= 2k+1)"
             else ""))
  in
  Cmd.v (Cmd.info "pure" ~doc:"Decide/construct pure Nash equilibria.")
    Term.(ret (const run $ file_arg $ family_arg $ seed_arg $ nu_arg $ k_arg))

(* solve *)
let solve_cmd =
  let verify_arg =
    Arg.(value & flag & info [ "verify" ] ~doc:"Exhaustively verify the result.")
  in
  let save_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"FILE" ~doc:"Write the equilibrium profile to FILE.")
  in
  let method_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("characterization", `Characterization);
               ("double-oracle", `Double_oracle);
             ])
          `Characterization
      & info [ "method" ] ~docv:"METHOD"
          ~doc:
            "Solver: $(b,characterization) (the paper's A_tuple closed forms; \
             tuple game only) or $(b,double-oracle) (column generation over \
             exact best-response oracles — any instance, either game).")
  in
  (* The double-oracle report, shared by both games: the invariant
     quantities plus the loop accounting, over already-extracted plain
     values (the two instantiations of the solver functor have distinct
     result types). *)
  let print_double_oracle ~nu ~value ~iterations ~oracle_calls ~warm_solves
      ~final_rows ~final_cols ~sigma_support ~tp_support =
    Printf.printf "game value (per-attacker interception): %s\n"
      (Exact.Q.to_string value);
    Printf.printf "defender gain: %s (= nu * value)\n"
      (Exact.Q.to_string (Exact.Q.mul_int value nu));
    Printf.printf "attacker escape probability: %s\n"
      (Exact.Q.to_string (Exact.Q.sub Exact.Q.one value));
    Printf.printf
      "double-oracle: %d iterations, %d oracle calls, %d warm solves, final \
       restricted game %dx%d, support %d vertices x %d strategies\n"
      iterations oracle_calls warm_solves final_rows final_cols sigma_support
      tp_support
  in
  let run file family seed nu k game lambda method_ verify save metrics trace =
    handle (fun () ->
        with_obs ~metrics ~trace @@ fun () ->
        let g = load_graph file family seed in
        match (method_, game) with
        | `Characterization, `Subgraph ->
            failwith
              "the characterization solver covers the tuple game only; use \
               --method double-oracle for the subgraph game"
        | `Characterization, `Tuple -> (
            let m = Defender.Model.make ~graph:g ~nu ~k in
            match Defender.Tuple_nash.a_tuple_auto m with
            | Error e -> Printf.printf "no k-matching NE: %s\n" e
            | Ok prof ->
                Format.printf "%a@." Defender.Profile.pp prof;
                Printf.printf "defender gain: %s (= k*nu/|IS|)\n"
                  (Exact.Q.to_string (Defender.Gain.defender_gain prof));
                Printf.printf "attacker escape probability: %s\n"
                  (Exact.Q.to_string (Defender.Gain.escape_probability prof 0));
                let mode =
                  if verify then Defender.Verify.Exhaustive 2_000_000
                  else Defender.Verify.Certificate
                in
                Printf.printf "verification (%s): %s\n"
                  (if verify then "exhaustive" else "certificate")
                  (Defender.Verify.verdict_to_string
                     (Defender.Verify.mixed_ne mode prof));
                match save with
                | Some path ->
                    Defender.Profile_io.save path prof;
                    Printf.printf "profile written to %s\n" path
                | None -> ())
        | `Double_oracle, `Tuple -> (
            let m = Defender.Model.make ~graph:g ~nu ~k in
            let module DO = Solver.Instances.Tuple in
            let r = DO.solve m in
            print_double_oracle ~nu ~value:r.DO.value
              ~iterations:r.DO.stats.DO.iterations
              ~oracle_calls:r.DO.stats.DO.oracle_calls
              ~warm_solves:r.DO.stats.DO.warm_solves
              ~final_rows:r.DO.stats.DO.final_rows
              ~final_cols:r.DO.stats.DO.final_cols
              ~sigma_support:(Dist.Finite.support_size r.DO.sigma)
              ~tp_support:(List.length r.DO.tp);
            let prof = DO.profile m r in
            Printf.printf "verification (oracle): %s\n"
              (Defender.Verify.verdict_to_string
                 (Defender.Verify.mixed_ne Defender.Verify.Oracle prof));
            if verify then
              Printf.printf "verification (exhaustive): %s\n"
                (Defender.Verify.verdict_to_string
                   (Defender.Verify.mixed_ne
                      (Defender.Verify.Exhaustive 2_000_000)
                      prof));
            match save with
            | Some path ->
                Defender.Profile_io.save path prof;
                Printf.printf "profile written to %s\n" path
            | None -> ())
        | `Double_oracle, `Subgraph ->
            if save <> None then
              failwith
                "--save writes Profile_io format, which covers the tuple game \
                 only";
            let inst = Defender.Subgraph_game.make ~graph:g ~nu ~lambda in
            let module DOS = Solver.Instances.Subgraph in
            let module SEngine = Defender.Subgraph_instance.Engine in
            let r = DOS.solve inst in
            print_double_oracle ~nu ~value:r.DOS.value
              ~iterations:r.DOS.stats.DOS.iterations
              ~oracle_calls:r.DOS.stats.DOS.oracle_calls
              ~warm_solves:r.DOS.stats.DOS.warm_solves
              ~final_rows:r.DOS.stats.DOS.final_rows
              ~final_cols:r.DOS.stats.DOS.final_cols
              ~sigma_support:(Dist.Finite.support_size r.DOS.sigma)
              ~tp_support:(List.length r.DOS.tp);
            let prof = DOS.profile inst r in
            Printf.printf "verification (oracle): %s\n"
              (SEngine.Verify.verdict_to_string
                 (SEngine.Verify.mixed_ne SEngine.Verify.Oracle prof));
            if verify then
              Printf.printf "verification (exhaustive): %s\n"
                (SEngine.Verify.verdict_to_string
                   (SEngine.Verify.mixed_ne
                      (SEngine.Verify.Exhaustive 2_000_000)
                      prof)))
  in
  Cmd.v
    (Cmd.info "solve"
       ~doc:
         "Compute an exact Nash equilibrium: the paper's closed-form \
          characterization, or the double-oracle solver for instances beyond \
          it.")
    Term.(
      ret
        (const run $ file_arg $ family_arg $ seed_arg $ nu_arg $ k_arg $ game_arg
       $ lambda_arg $ method_arg $ verify_arg $ save_arg $ metrics_arg
       $ trace_arg))

(* verify: re-check a saved profile *)
let verify_cmd =
  let load_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "load" ] ~docv:"FILE" ~doc:"Saved profile to verify.")
  in
  let run file family seed nu k path =
    handle (fun () ->
        let g = load_graph file family seed in
        let m = Defender.Model.make ~graph:g ~nu ~k in
        let prof = Defender.Profile_io.load m path in
        Printf.printf "definitional check: %s\n"
          (Defender.Verify.verdict_to_string
             (Defender.Verify.mixed_ne (Defender.Verify.Exhaustive 2_000_000) prof));
        Format.printf "Theorem 3.4 characterization:@.%a@."
          Defender.Characterization.pp_report
          (Defender.Characterization.check (Defender.Verify.Exhaustive 2_000_000) prof);
        Printf.printf "defender gain: %s\n"
          (Exact.Q.to_string (Defender.Gain.defender_gain prof)))
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Re-verify a saved equilibrium profile against a graph.")
    Term.(
      ret (const run $ file_arg $ family_arg $ seed_arg $ nu_arg $ k_arg $ load_arg))

(* simulate *)
let simulate_cmd =
  let rounds_arg =
    Arg.(value & opt int 10_000 & info [ "rounds" ] ~docv:"N" ~doc:"Simulation rounds.")
  in
  let run file family seed nu k rounds =
    handle (fun () ->
        let g = load_graph file family seed in
        let m = Defender.Model.make ~graph:g ~nu ~k in
        match Defender.Tuple_nash.a_tuple_auto m with
        | Error e -> Printf.printf "no k-matching NE to simulate: %s\n" e
        | Ok prof ->
            let stats = Sim.Engine.play (Prng.Rng.create seed) prof ~rounds in
            Printf.printf "analytic expected catch: %s\n"
              (Exact.Q.to_string (Defender.Gain.defender_gain prof));
            Printf.printf "simulated mean over %d rounds: %.4f (95%% CI +/- %.4f)\n"
              rounds stats.Sim.Engine.mean_caught (Sim.Engine.confidence95 stats);
            Printf.printf "agreement: %b\n"
              (Sim.Engine.agrees_with_analytic stats prof))
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Monte-Carlo play of the equilibrium.")
    Term.(
      ret (const run $ file_arg $ family_arg $ seed_arg $ nu_arg $ k_arg $ rounds_arg))

(* dynamics *)
let dynamics_cmd =
  let steps_arg =
    Arg.(value & opt int 10_000 & info [ "max-steps" ] ~docv:"N" ~doc:"Step budget.")
  in
  let run file family seed nu k game lambda max_steps =
    handle (fun () ->
        let g = load_graph file family seed in
        match game with
        | `Tuple -> (
            let m = Defender.Model.make ~graph:g ~nu ~k in
            match Sim.Dynamics.run (Prng.Rng.create seed) m ~max_steps with
            | Sim.Dynamics.Converged { steps; profile } ->
                Printf.printf
                  "converged to a pure NE after %d steps; defender plays {%s}\n"
                  steps
                  (String.concat ","
                     (List.map string_of_int
                        (Defender.Tuple.to_list profile.Defender.Profile.tp_choice)))
            | Sim.Dynamics.Cycling { steps } ->
                Printf.printf
                  "still churning after %d steps — consistent with no pure NE \
                   (rho = %d vs k = %d)\n"
                  steps (Matching.Edge_cover.rho g) k)
        | `Subgraph -> (
            let module D = Sim.Sim_instance.Subgraph.Dynamics in
            let inst = Defender.Subgraph_game.make ~graph:g ~nu ~lambda in
            match D.run (Prng.Rng.create seed) inst ~max_steps with
            | D.Converged { steps; profile } ->
                Printf.printf
                  "converged to a pure NE after %d steps; defender plays %s\n"
                  steps
                  (Format.asprintf "%a" Defender.Subgraph_game.Strategy.pp
                     profile.tp_choice)
            | D.Cycling { steps } ->
                Printf.printf
                  "still churning after %d steps — consistent with no pure NE\n"
                  steps))
  in
  Cmd.v (Cmd.info "dynamics" ~doc:"Best-response dynamics.")
    Term.(
      ret
        (const run $ file_arg $ family_arg $ seed_arg $ nu_arg $ k_arg $ game_arg
       $ lambda_arg $ steps_arg))

(* experiments: drive the shared registry (same set as bench/main.exe) *)
let experiments_cmd =
  let list_arg =
    Arg.(value & flag & info [ "list" ] ~doc:"List registered experiments and exit.")
  in
  let only_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "only" ] ~docv:"IDS"
          ~doc:"Comma-separated experiment ids to run, e.g. T4,F2.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write the JSON artifact to FILE.")
  in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ] ~doc:"Reduced-size sweep (same seeds, smaller instances).")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress the text rendering.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Run experiments across $(docv) forked worker processes (1 = \
             in-process sequential run; results keep registration order).")
  in
  let timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECS"
          ~doc:
            "Per-experiment wall-clock budget; a worker past it is killed and \
             its experiment reported as crashed.")
  in
  let force_crash_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "force-crash" ] ~docv:"IDS"
          ~doc:
            "Kill the worker running each listed experiment (fault-injection \
             test hook for the crash-isolation path).")
  in
  let pool_arg =
    Arg.(
      value & flag
      & info [ "pool" ]
          ~doc:
            "Dispatch through a persistent pre-forked worker pool instead of \
             forking one worker per experiment: workers live across \
             experiments, a crashed worker is respawned and its experiment \
             retried once before being reported crashed.")
  in
  let split_ids = function
    | None -> []
    | Some ids -> String.split_on_char ',' ids |> List.filter (fun x -> x <> "")
  in
  let run list only json smoke quiet jobs pool timeout force_crash metrics trace
      =
    if list then `Ok (print_string (Experiments.Runner.list_text ()))
    else
      let opts =
        {
          Experiments.Runner.default_opts with
          Experiments.Runner.scale =
            (if smoke then Harness.Experiment.Smoke else Harness.Experiment.Full);
          only = split_ids only;
          json_out = json;
          echo = not quiet;
          jobs;
          pool;
          timeout;
          force_crash = split_ids force_crash;
          metrics;
          trace;
        }
      in
      match Experiments.Runner.run opts with
      | 0 -> `Ok ()
      | 1 -> `Error (false, "one or more experiments degraded or crashed")
      | _ -> `Error (false, "experiment selection failed")
  in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:
         "Run the registered reproduction experiments (tables, figures, \
          microbenchmarks) and optionally emit the JSON artifact.")
    Term.(
      ret
        (const run $ list_arg $ only_arg $ json_arg $ smoke_arg $ quiet_arg
       $ jobs_arg $ pool_arg $ timeout_arg $ force_crash_arg $ metrics_arg
       $ trace_arg))

(* serve / query: the batch-query daemon (Harness.Daemon specialized by
   Service.Daemon_service) and its scriptable client. *)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Listen/connect on a Unix socket.")

let port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"N" ~doc:"Listen/connect on a TCP port.")

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"TCP host (with $(b,--port)).")

let address_of socket port host =
  match (socket, port) with
  | Some path, None -> Harness.Daemon.Unix_socket path
  | None, Some n -> Harness.Daemon.Tcp (host, n)
  | Some _, Some _ -> failwith "give either --socket or --port, not both"
  | None, None -> failwith "an address is required: --socket PATH or --port N"

let serve_cmd =
  let jobs_arg =
    Arg.(
      value & opt int 2
      & info [ "jobs" ] ~docv:"N" ~doc:"Worker processes answering queries.")
  in
  let timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECS"
          ~doc:
            "Per-request budget; a worker past it is killed and the request \
             answered with an error.")
  in
  let cache_arg =
    Arg.(
      value & opt int 1024
      & info [ "cache-entries" ] ~docv:"M"
          ~doc:
            "Capacity of the canonical-instance solve cache (LRU eviction; 0 \
             disables caching).")
  in
  let inflight_arg =
    Arg.(
      value & opt int 64
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:
            "Dispatched-and-unanswered request high-water mark; past it new \
             queries are rejected with a busy error.")
  in
  let run socket port host jobs timeout cache_entries max_inflight metrics trace
      =
    handle (fun () ->
        with_obs ~metrics ~trace @@ fun () ->
        let address = address_of socket port host in
        let stats =
          Service.Daemon_service.serve ~address ~workers:jobs ?timeout
            ~cache_entries ~max_inflight
            ~on_ready:(fun sa ->
              (match sa with
              | Unix.ADDR_UNIX path -> Printf.printf "listening on %s\n" path
              | Unix.ADDR_INET (a, p) ->
                  Printf.printf "listening on %s:%d\n"
                    (Unix.string_of_inet_addr a)
                    p);
              flush stdout)
            ()
        in
        Printf.printf
          "drained: %d requests, %d cache hits, %d busy rejects\n"
          stats.Harness.Daemon.requests stats.Harness.Daemon.cache_hits
          stats.Harness.Daemon.busy_rejects)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the query daemon: a socket server answering solve/profit/\
          equilibrium-check requests from a worker pool, with a canonical-\
          instance solve cache (isomorphic queries share one entry).  Drains \
          and exits on SIGTERM, SIGINT or a $(b,shutdown) request.")
    Term.(
      ret
        (const run $ socket_arg $ port_arg $ host_arg $ jobs_arg $ timeout_arg
       $ cache_arg $ inflight_arg $ metrics_arg $ trace_arg))

let query_cmd =
  let op_arg =
    Arg.(
      value & opt string "solve"
      & info [ "op" ] ~docv:"OP"
          ~doc:
            "Request op: $(b,solve), $(b,profit), $(b,equilibrium-check), \
             $(b,ping), $(b,stats) or $(b,shutdown).")
  in
  let graph6_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "graph6" ] ~docv:"G6" ~doc:"Graph as a graph6/sparse6 line.")
  in
  let profile_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile" ] ~docv:"FILE"
          ~doc:"Saved profile to send (profit, equilibrium-check).")
  in
  let mode_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            "Verification mode: $(b,certificate), $(b,exhaustive) or \
             $(b,oracle).")
  in
  let solve_method_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "method" ] ~docv:"METHOD"
          ~doc:
            "Solve method sent with the request: $(b,characterization) \
             (default) or $(b,double-oracle).")
  in
  let raw_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "request" ] ~docv:"JSON"
          ~doc:
            "Raw request object sent verbatim (scripting escape hatch; \
             overrides every other request option).")
  in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:"Connection attempts to retry, 50 ms apart (daemon startup).")
  in
  let pretty_arg =
    Arg.(value & flag & info [ "pretty" ] ~doc:"Pretty-print the response.")
  in
  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let run socket port host retries op graph6 file family seed k nu game lambda
      profile mode solve_method raw pretty =
    handle (fun () ->
        let module Json = Harness.Json in
        let address = address_of socket port host in
        let msg =
          match raw with
          | Some text -> (
              match Json.of_string text with
              | Ok j -> j
              | Error e -> failwith ("bad --request JSON: " ^ e))
          | None ->
              let g6 =
                (* The daemon speaks graph6 only; file and family inputs
                   are encoded client-side. *)
                match (graph6, file, family) with
                | Some s, None, None -> Some s
                | None, Some f, None ->
                    Some (Netgraph.Graph6.encode (Netgraph.Edge_list.load f))
                | None, None, Some spec ->
                    Some (Netgraph.Graph6.encode (parse_family spec seed))
                | None, None, None -> None
                | _ -> failwith "give at most one of --graph6, --file, --family"
              in
              Json.Obj
                (List.concat
                   [
                     [ ("id", Json.Int 0); ("op", Json.String op) ];
                     (match g6 with
                     | Some s -> [ ("graph6", Json.String s) ]
                     | None -> []);
                     [
                       ("k", Json.Int k);
                       ("nu", Json.Int nu);
                       ( "game",
                         Json.String
                           (match game with
                           | `Tuple -> "tuple"
                           | `Subgraph -> "subgraph") );
                       ("lambda", Json.Int lambda);
                     ];
                     (match profile with
                     | Some path ->
                         [ ("profile", Json.String (read_file path)) ]
                     | None -> []);
                     (match mode with
                     | Some m -> [ ("mode", Json.String m) ]
                     | None -> []);
                     (match solve_method with
                     | Some m -> [ ("method", Json.String m) ]
                     | None -> []);
                   ])
        in
        let conn = Harness.Daemon.Client.connect ~retries address in
        Fun.protect ~finally:(fun () -> Harness.Daemon.Client.close conn)
        @@ fun () ->
        match Harness.Daemon.Client.request conn msg with
        | Error e -> failwith e
        | Ok response -> (
            print_endline (Json.to_string ~pretty response);
            match Json.member "ok" response with
            | Some (Json.Bool true) -> ()
            | _ -> exit 1))
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Send one request to a running daemon and print the JSON response \
          (exit 1 when the daemon answers $(b,ok:false)).")
    Term.(
      ret
        (const run $ socket_arg $ port_arg $ host_arg $ retries_arg $ op_arg
       $ graph6_arg $ file_arg $ family_arg $ seed_arg $ k_arg $ nu_arg
       $ game_arg $ lambda_arg $ profile_arg $ mode_arg $ solve_method_arg
       $ raw_arg $ pretty_arg))

let () =
  let info =
    Cmd.info "defender-cli" ~version:"1.0.0"
      ~doc:"Attack/defense network games: the Tuple model of ICDCS 2006."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            gen_cmd;
            analyze_cmd;
            pure_cmd;
            solve_cmd;
            verify_cmd;
            simulate_cmd;
            dynamics_cmd;
            minimax_cmd;
            paths_cmd;
            fp_cmd;
            census_cmd;
            experiments_cmd;
            serve_cmd;
            query_cmd;
          ]))
